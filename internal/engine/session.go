package engine

import (
	"fmt"
	"math"
	"sort"

	"octgb/internal/core"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/octree"
	"octgb/internal/surface"
)

// Session is the incremental-evaluation pipeline for moving molecules: an
// MD-trajectory or docking-refinement stream where a small fraction of the
// atoms moves a little each frame. Where Prepared amortizes preprocessing
// across evaluations of FROZEN geometry, a Session amortizes it across
// frames of DRIFTING geometry, turning per-frame cost from O(full eval)
// into O(changed atoms + affected neighborhoods).
//
// The design has three layers of caching, each with an explicit validity
// rule:
//
//   - Structure (octrees, interaction lists). Both trees' topology is
//     frozen for the session's lifetime; node geometry is frozen per
//     "epoch" between structural refreshes. Interaction lists are derived
//     per DRIVER leaf (a T_Q leaf for the Born phase, an atoms-tree leaf
//     for the energy phase) with every enclosing ball inflated by a slack
//     margin (core.SlackMargin), so a list stays valid while its driver's
//     points drift within the margin. A driver whose points exceed their
//     margin gets just its own segment re-derived against the refit ball
//     of its current points; a non-driver (internal) node exceeding its
//     margin triggers a full structural refresh (refit + rebuild).
//   - Far fields. Far-entry values depend only on epoch-frozen node
//     geometry and aggregates (ñ_Q is position independent; the energy
//     phase's charge bins are frozen per epoch), so they are cached per
//     entry and only recomputed when their segment is re-derived.
//   - Per-frame values, cached at PAIR granularity. The Born phase keeps
//     one row block per (T_A leaf, driver) near entry — the driver's
//     contribution to each atom of the leaf — and the energy phase one
//     value per (u-leaf, driver) near entry. A cached entry is a pure
//     function of its two leaves' atom data, so exactly the entries whose
//     inputs changed are re-evaluated each frame; row and driver sums are
//     then rebuilt as plain float64 additions over the caches in a
//     canonical order (drivers ascending, entries in traversal order).
//     Every path — incremental, resweep, refresh, creation — evaluates an
//     entry through the same single-entry range-evaluator call, and there
//     is NO subtract-old/add-new arithmetic anywhere, so a clean cache
//     entry is BITWISE the value a full recompute would produce: a session
//     with ResweepEvery=1 (every frame recomputes every value from current
//     state) is the from-scratch oracle, and the incremental path must
//     match it exactly, not merely within a drift tolerance.
//     ResweepEvery's periodic full resweep therefore re-verifies rather
//     than repairs; it bounds the blast radius of any dirty-tracking
//     defect.
//
// One deliberate, bounded staleness knob sits between the two phases:
// exact Born radii (rTree) are maintained every frame, but the energy
// solver's copy is re-pushed only when a radius drifts more than
// RadiusTolerance relative to its pushed value. Without the gate the
// radius coupling is dense — at 1% atom motion essentially every radius
// moves by a few ulps to 1e-6 relative, dirtying every energy driver and
// pinning the frame cost at a full energy near-field sweep. The push rule
// is a deterministic function of the frame stream alone (resweeps
// recompute values but do not force pushes), so oracle and incremental
// sessions hold bitwise-identical pushed radii and the 1e-12 oracle
// contract is untouched; the cost is a bounded absolute offset of order
// RadiusTolerance against a zero-tolerance session, far below the
// treecode approximation error. RadiusTolerance < 0 disables the gate.
//
// Surface quadrature points are transported rigidly with their owning atom
// (surface.SampleOwned); burial culling is decided at session creation and
// not revisited, which is the standard fixed-topology approximation for
// small-amplitude streams. A Session is not safe for concurrent use.
type Session struct {
	opts SessionOptions
	eo   Options // evaluation options, defaults resolved

	mol     *molecule.Molecule // session-owned copy, current positions
	charges []float64
	ecfg    core.EpolConfig

	bs *core.BornSolver
	es *core.EpolSolver

	// Frozen-topology maps.
	aInv    []int32     // original atom index -> T_A tree index
	aLeafOf []int32     // T_A tree index -> owning leaf node
	qLeafOf []int32     // T_Q tree index -> owning leaf node
	qOwner  [][]int32   // original atom index -> owned q-point tree indices
	qOff    []geom.Vec3 // q-point tree index -> rigid offset from owner atom
	aDense  []int32     // T_A node id -> dense leaf index (-1 for non-leaf)
	qDense  []int32     // T_Q node id -> dense leaf index

	// Born phase per-driver segments (indexed by dense T_Q leaf index).
	bornNear       [][]int32   // near entries: T_A leaf node ids, traversal order
	bornFar        [][]int32   // far entries: T_A node ids, traversal order
	bornFarVal     [][]float64 // cached far-entry values, parallel to bornFar
	bornPartners   [][]int32   // T_A leaf node id -> dense driver indices, ascending
	bornPartnerPos [][]int32   // parallel: entry index within the driver's near list
	bornEntrySlot  [][]int32   // per driver: entry k's slot in its row's partner list

	// rowBlk holds the per-(row, driver) near blocks ROW-major: row leaf a
	// keeps its partners' blocks contiguous in ascending driver order
	// (slot s of P, each Count(a) wide), so the per-frame row resum is a
	// single sequential sweep instead of one pointer chase per tiny block.
	// The trade is that a row's slots shift when its partner MEMBERSHIP
	// changes; rederiveBorn detects exactly those rows (symmetric diff of
	// the old and new near list) and they re-derive all their blocks.
	rowBlk [][]float64 // per T_A leaf node id

	sNodeFar  []float64 // per T_A node: canonical far sums
	farTotal  []float64 // per T_A node: pushed-down ancestor totals
	sAtomNear []float64 // per atom (tree order): near-field rows
	rTree     []float64 // per atom (tree order): exact current Born radii
	rPushed   []float64 // per atom (tree order): radius the energy solver holds

	// Energy phase per-driver segments (indexed by dense atoms-tree leaf
	// index). Near segments keep the NodePair form so resums can run the
	// same (vectorized where available) range evaluator the flat pipeline
	// uses — the session must use ONE evaluator per value kind everywhere,
	// or incremental and resweep values would diverge at summation-order
	// level.
	epolNear       [][]core.NodePair // near entries, traversal order
	epolNearVal    [][]float64       // cached per-entry near values, parallel to epolNear
	epolFar        [][]int32         // far entries: u node ids, traversal order
	nearVal        []float64         // per driver: near-field sum
	farVal         []float64         // per driver: far-field sum (epoch-frozen inputs)
	epolPartners   [][]int32         // u-leaf node id -> dense driver indices, ascending
	epolPartnerPos [][]int32         // parallel: entry index within the driver's near list

	// Slack-margin state. refPos* is the per-point position at the owning
	// driver's last (re-)derivation; epochPos* at the last structural
	// refresh. disp* hold per-leaf maximum point displacements against
	// those references; refBallR* the driver-ball radius the slack budget
	// is anchored to.
	refPosA, epochPosA     []geom.Vec3
	refPosQ, epochPosQ     []geom.Vec3
	dispRefA, dispEpochA   []float64
	dispRefQ, dispEpochQ   []float64
	refBallRA, refBallRQ   []float64
	nodeDispA, nodeDispQ   []float64 // epoch-bubble scratch, per node

	frame  int
	energy float64

	// Per-frame scratch (mark bits cleared lazily via the id lists).
	scratch        core.InteractionList
	rowPairs       core.InteractionList // reusable single-entry pair view
	rowScratch     []float64            // full-length row scratch for block evals
	movedA, movedQ []int32              // moved leaf node ids this frame
	markA, markQ   []bool
	dirtyRows      []int32 // T_A leaf node ids with dirty near rows
	markRow        []bool
	dirtyV         []int32 // dense energy-driver indices to resum
	markV          []bool
	listU          []int32 // T_A leaf node ids whose energy inputs changed
	markU          []bool
	dirtyEnt       [][]int32 // per driver: entry indices to re-evaluate (drained per frame)
	fullV          []bool    // per driver: re-evaluate the whole segment this frame
	slotDirty      []int32   // T_A leaf node ids whose partner membership changed
	markSlot       []bool
	oldNear        []int32 // rederiveBorn scratch: the driver's previous near list
}

// SessionOptions configures a streaming session.
type SessionOptions struct {
	// Surf is the surface sampling used once at session creation.
	Surf surface.Options
	// Eval supplies the engine parameters (BornEps, EpolEps, Math,
	// Precision, LeafSize, CriterionPower). Parallel/distributed fields
	// are ignored — a session evaluates serially, its work being O(dirty).
	Eval Options
	// ResweepEvery forces a full value resweep every k-th frame (≤0 → 64).
	// The resweep recomputes every cached value from current positions in
	// canonical order; with sound dirty tracking it is a bitwise no-op, so
	// it bounds the damage of a tracking defect rather than accumulated
	// float drift (the zero-and-resum design has none). 1 = every frame
	// (the from-scratch oracle the property tests compare against).
	ResweepEvery int
	// SlackFactor and MinSlack define the drift margin
	// core.SlackMargin(r) = SlackFactor·r + MinSlack granted to enclosing
	// balls before lists are re-derived (driver leaves) or the structure
	// is refreshed (any node). Defaults 0.05 and 0.25 Å.
	SlackFactor float64
	MinSlack    float64
	// RadiusTolerance is the relative staleness budget of the Born radii
	// the energy phase evaluates with: atom radii are recomputed exactly
	// every frame, but the energy solver's copy is re-pushed only when
	// |r_exact - r_pushed| > RadiusTolerance·r_exact. The gate is what
	// localizes the energy phase's dirty set — the radius coupling is
	// dense at the last-ulp level — and its error against a zero-tolerance
	// session is a bounded offset of order RadiusTolerance, far below the
	// treecode approximation error. The push rule depends only on the
	// frame stream, never on resweep cadence, so it does not perturb the
	// oracle contract. 0 → default 1e-6; negative → exact (push every
	// changed bit).
	RadiusTolerance float64
}

func (o SessionOptions) withDefaults() SessionOptions {
	if o.ResweepEvery <= 0 {
		o.ResweepEvery = 64
	}
	if o.SlackFactor <= 0 {
		o.SlackFactor = 0.05
	}
	if o.MinSlack <= 0 {
		o.MinSlack = 0.25
	}
	switch {
	case o.RadiusTolerance == 0:
		o.RadiusTolerance = 1e-6
	case o.RadiusTolerance < 0:
		o.RadiusTolerance = 0
	}
	return o
}

// rederiveFraction is the share of a driver ball's slack margin its points
// may drift before the driver's segment is re-derived. It must be < 1: the
// epoch bubble refreshes the whole structure at the FULL margin, and both
// thresholds start from the same geometry, so an equal fraction would let
// the refresh path shadow re-derivation entirely. Classification inflation
// stays at the full margin, so re-deriving earlier never loosens a far
// decision — it only re-anchors the driver's budget sooner.
const rederiveFraction = 0.5

// AtomMove sets one atom (original order) to an absolute position.
type AtomMove struct {
	Index int
	Pos   geom.Vec3
}

// FrameDelta is one frame of a stream: the atoms that moved.
type FrameDelta struct {
	Moves []AtomMove
}

// FrameReport describes what one Step did.
type FrameReport struct {
	Frame      int
	Energy     float64 // E_pol after this frame, kcal/mol
	MovedAtoms int
	// DirtyBornRows counts T_A leaf rows whose Born near sums were
	// resummed; DirtyEpolDrivers the energy drivers resummed. Both are 0
	// when the frame took the resweep or refresh path.
	DirtyBornRows    int
	DirtyEpolDrivers int
	// PushedRadii counts Born radii re-pushed to the energy solver after
	// drifting past RadiusTolerance.
	PushedRadii int
	// Rederived counts driver segments re-derived after a slack breach.
	Rederived int
	// Resweep / Refreshed mark frames that took the periodic full resweep
	// or the structural-refresh path.
	Resweep   bool
	Refreshed bool
}

// NewSession samples the molecule's surface, builds both treecode solvers,
// derives every driver segment with slack margins, and evaluates the
// initial energy. The molecule is copied; the caller's value is never
// mutated.
func NewSession(mol *molecule.Molecule, o SessionOptions) (*Session, error) {
	o = o.withDefaults()
	eo := o.Eval.withDefaults(OctCilk)
	if err := eo.Validate(); err != nil {
		return nil, err
	}
	if mol.N() == 0 {
		return nil, fmt.Errorf("engine: session needs a non-empty molecule")
	}
	m := &molecule.Molecule{Name: mol.Name, Atoms: append([]molecule.Atom(nil), mol.Atoms...)}
	qpts, owners := surface.SampleOwned(m, o.Surf)
	if len(qpts) == 0 {
		return nil, fmt.Errorf("engine: session surface sampling produced no quadrature points")
	}

	ss := &Session{opts: o, eo: eo, mol: m}
	ss.charges = make([]float64, m.N())
	for i := range m.Atoms {
		ss.charges[i] = m.Atoms[i].Charge
	}
	ss.ecfg = core.EpolConfig{Eps: eo.EpolEps, Math: eo.Math, Precision: eo.Precision}
	ss.bs = core.NewBornSolver(m, qpts, core.BornConfig{
		Eps: eo.BornEps, CriterionPower: eo.CriterionPower,
		LeafSize: eo.LeafSize, Precision: eo.Precision,
	})
	ta, tq := ss.bs.TA, ss.bs.TQ

	ss.aInv = ta.InvPerm()
	ss.aLeafOf = ta.PointLeaves()
	ss.qLeafOf = tq.PointLeaves()
	ss.qOwner = make([][]int32, m.N())
	ss.qOff = make([]geom.Vec3, len(qpts))
	for j, orig := range tq.Perm {
		ow := owners[orig]
		ss.qOff[j] = qpts[orig].Pos.Sub(m.Atoms[ow].Pos)
		ss.qOwner[ow] = append(ss.qOwner[ow], int32(j))
	}
	ss.aDense = denseLeafIndex(len(ta.Nodes), ta.LeafIdx)
	ss.qDense = denseLeafIndex(len(tq.Nodes), tq.LeafIdx)

	nA, nQ := len(ta.Points), len(tq.Points)
	la, lq := len(ta.LeafIdx), len(tq.LeafIdx)
	ss.bornNear = make([][]int32, lq)
	ss.bornFar = make([][]int32, lq)
	ss.bornFarVal = make([][]float64, lq)
	ss.bornEntrySlot = make([][]int32, lq)
	ss.rowBlk = make([][]float64, len(ta.Nodes))
	ss.bornPartners = make([][]int32, len(ta.Nodes))
	ss.bornPartnerPos = make([][]int32, len(ta.Nodes))
	ss.sNodeFar = make([]float64, len(ta.Nodes))
	ss.farTotal = make([]float64, len(ta.Nodes))
	ss.sAtomNear = make([]float64, nA)
	ss.rTree = make([]float64, nA)
	ss.rPushed = make([]float64, nA)
	ss.epolNear = make([][]core.NodePair, la)
	ss.epolNearVal = make([][]float64, la)
	ss.epolFar = make([][]int32, la)
	ss.nearVal = make([]float64, la)
	ss.farVal = make([]float64, la)
	ss.epolPartners = make([][]int32, len(ta.Nodes))
	ss.epolPartnerPos = make([][]int32, len(ta.Nodes))
	ss.rowScratch = make([]float64, nA)

	ss.refPosA = append([]geom.Vec3(nil), ta.Points...)
	ss.epochPosA = append([]geom.Vec3(nil), ta.Points...)
	ss.refPosQ = append([]geom.Vec3(nil), tq.Points...)
	ss.epochPosQ = append([]geom.Vec3(nil), tq.Points...)
	ss.dispRefA = make([]float64, len(ta.Nodes))
	ss.dispEpochA = make([]float64, len(ta.Nodes))
	ss.dispRefQ = make([]float64, len(tq.Nodes))
	ss.dispEpochQ = make([]float64, len(tq.Nodes))
	ss.refBallRA = make([]float64, len(ta.Nodes))
	ss.refBallRQ = make([]float64, len(tq.Nodes))
	ss.nodeDispA = make([]float64, len(ta.Nodes))
	ss.nodeDispQ = make([]float64, len(tq.Nodes))
	ss.markA = make([]bool, len(ta.Nodes))
	ss.markQ = make([]bool, len(tq.Nodes))
	ss.markRow = make([]bool, len(ta.Nodes))
	ss.markSlot = make([]bool, len(ta.Nodes))
	ss.markV = make([]bool, la)
	ss.markU = make([]bool, len(ta.Nodes))
	ss.dirtyEnt = make([][]int32, la)
	ss.fullV = make([]bool, la)
	_ = nQ

	ss.rebuildStructure()
	return ss, nil
}

// denseLeafIndex inverts LeafIdx: node id -> dense leaf index, -1 elsewhere.
func denseLeafIndex(nodes int, leafIdx []int32) []int32 {
	out := make([]int32, nodes)
	for i := range out {
		out[i] = -1
	}
	for dense, node := range leafIdx {
		out[node] = int32(dense)
	}
	return out
}

// Energy returns E_pol after the most recent frame (kcal/mol).
func (ss *Session) Energy() float64 { return ss.energy }

// Frame returns the number of frames stepped so far.
func (ss *Session) Frame() int { return ss.frame }

// NumAtoms returns the atom count.
func (ss *Session) NumAtoms() int { return len(ss.mol.Atoms) }

// NumQPoints returns the surface quadrature point count.
func (ss *Session) NumQPoints() int { return len(ss.qOff) }

// Precision returns the storage tier the session evaluates on.
func (ss *Session) Precision() core.Precision { return ss.eo.Precision }

// Step advances the stream by one frame: apply the delta, re-derive what
// the slack margins invalidated, recompute exactly the dirty values, and
// return the new energy. On an out-of-range move index the session is left
// unchanged.
func (ss *Session) Step(d FrameDelta) (FrameReport, error) {
	n := len(ss.mol.Atoms)
	for _, mv := range d.Moves {
		if mv.Index < 0 || mv.Index >= n {
			return FrameReport{}, fmt.Errorf("engine: frame move references atom %d, have %d atoms", mv.Index, n)
		}
	}
	ss.clearFrameMarks()
	ss.frame++
	rep := FrameReport{Frame: ss.frame, MovedAtoms: len(d.Moves)}

	// Apply moves: patch every position mirror of both solvers, transport
	// owned q-points rigidly, and mark the moved leaves of both trees.
	for _, mv := range d.Moves {
		ti := ss.aInv[mv.Index]
		ss.mol.Atoms[mv.Index].Pos = mv.Pos
		ss.bs.SetAtomPoint(ti, mv.Pos)
		ss.es.SetPointMirrors(ti, mv.Pos)
		if l := ss.aLeafOf[ti]; !ss.markA[l] {
			ss.markA[l] = true
			ss.movedA = append(ss.movedA, l)
		}
		for _, qi := range ss.qOwner[mv.Index] {
			ss.bs.SetQPoint(qi, mv.Pos.Add(ss.qOff[qi]))
			if l := ss.qLeafOf[qi]; !ss.markQ[l] {
				ss.markQ[l] = true
				ss.movedQ = append(ss.movedQ, l)
			}
		}
	}
	sortInt32(ss.movedA)
	sortInt32(ss.movedQ)

	// Refresh per-leaf displacement maxima for the moved leaves, then
	// bubble epoch displacements up both trees; any node beyond its slack
	// margin forces a structural refresh.
	for _, l := range ss.movedA {
		ss.dispRefA[l], ss.dispEpochA[l] = leafDisp(ss.bs.TA, l, ss.refPosA, ss.epochPosA)
	}
	for _, l := range ss.movedQ {
		ss.dispRefQ[l], ss.dispEpochQ[l] = leafDisp(ss.bs.TQ, l, ss.refPosQ, ss.epochPosQ)
	}
	if len(ss.movedA)+len(ss.movedQ) > 0 && ss.epochBreach() {
		ss.refresh()
		rep.Refreshed = true
		rep.Energy = ss.energy
		return rep, nil
	}

	// Re-derive the driver segments whose points drifted past their slack
	// budget. Only moved leaves can newly breach.
	bornStruct, epolStruct := false, false
	for _, l := range ss.movedQ {
		if ss.dispRefQ[l] > rederiveFraction*core.SlackMargin(ss.refBallRQ[l], ss.opts.SlackFactor, ss.opts.MinSlack) {
			ss.rederiveBorn(l)
			bornStruct = true
			rep.Rederived++
		}
	}
	for _, l := range ss.movedA {
		if ss.dispRefA[l] > rederiveFraction*core.SlackMargin(ss.refBallRA[l], ss.opts.SlackFactor, ss.opts.MinSlack) {
			ss.rederiveEpol(l)
			epolStruct = true
			rep.Rederived++
		}
	}
	if bornStruct {
		ss.rebuildBornPartners()
		ss.recomputeFarSums()
		// Rows whose partner membership changed have shifted block slots:
		// resize their stores now (the resweep path writes through slots
		// too); their block values are rebuilt in the incremental pass.
		for _, a := range ss.slotDirty {
			ss.sizeRowBlocks(a)
			ss.markDirtyRow(a)
		}
	}
	if epolStruct {
		ss.rebuildEpolPartners()
	}

	// Periodic full resweep: recompute EVERY cached value from current
	// positions in canonical order. Bitwise a no-op when dirty tracking is
	// sound — the property tests pin exactly that.
	if ss.frame%ss.opts.ResweepEvery == 0 {
		ss.resweep()
		rep.Resweep = true
		rep.Energy = ss.energy
		return rep, nil
	}

	// Born near blocks: a cached block is a pure function of its driver's
	// q-points and its row's atom positions, so re-evaluate every block of
	// a moved (or re-derived) driver and, for each moved row, its block in
	// every partnered driver; then rebuild the dirty rows from the caches
	// with plain additions in canonical driver order. rederiveBorn marked
	// the old and new rows of re-derived drivers already.
	for _, l := range ss.movedQ {
		ql := int(ss.qDense[l])
		ss.recomputeDriverBlocks(ql)
		for _, a := range ss.bornNear[ql] {
			ss.markDirtyRow(a)
		}
	}
	for _, l := range ss.movedA {
		ss.markDirtyRow(l)
		pp, pk := ss.bornPartners[l], ss.bornPartnerPos[l]
		for idx := range pp {
			ss.recomputeBornBlock(int(pp[idx]), int(pk[idx]))
		}
	}
	// Slot-shifted rows rebuild ALL their blocks: values of unmoved
	// partners are unchanged but live at new offsets, and re-evaluating
	// through the canonical entry path reproduces them bitwise.
	for _, a := range ss.slotDirty {
		pp, pk := ss.bornPartners[a], ss.bornPartnerPos[a]
		for idx := range pp {
			ss.recomputeBornBlock(int(pp[idx]), int(pk[idx]))
		}
	}
	sortInt32(ss.dirtyRows)
	for _, a := range ss.dirtyRows {
		ss.resumBornRow(a)
	}
	rep.DirtyBornRows = len(ss.dirtyRows)

	// Born radii: rTree is always recomputed exactly (O(atoms), pure
	// function of the cached sums); the energy solver's copy is re-pushed
	// only past RadiusTolerance. The energy dirty set is then exactly the
	// leaves whose pushed inputs changed: moved leaves plus leaves holding
	// a re-pushed radius.
	for _, l := range ss.movedA {
		ss.markULeaf(l)
	}
	rep.PushedRadii = ss.pushRadii(true)

	// Energy near entries: a changed u-leaf dirties its entry in every
	// partnered driver; a driver whose own leaf changed dirties its whole
	// segment (its atoms sit on the v side of every entry). Dirty entries
	// are then re-evaluated grouped per driver — one v-tile pack per
	// driver in the vector path — and dirty drivers resum their cached
	// entries in traversal order.
	sortInt32(ss.listU)
	for _, u := range ss.listU {
		if vl := ss.aDense[u]; vl >= 0 {
			ss.fullV[vl] = true
			ss.markDirtyV(vl)
		}
		pp, pk := ss.epolPartners[u], ss.epolPartnerPos[u]
		for idx := range pp {
			vl := pp[idx]
			if !ss.fullV[vl] {
				ss.dirtyEnt[vl] = append(ss.dirtyEnt[vl], pk[idx])
			}
			ss.markDirtyV(vl)
		}
	}
	sortInt32(ss.dirtyV)
	for _, vl := range ss.dirtyV {
		if ss.fullV[vl] {
			ss.es.EvalEpolNearEntryValues(ss.epolNear[vl], nil, ss.epolNearVal[vl])
		} else {
			ss.es.EvalEpolNearEntryValues(ss.epolNear[vl], ss.dirtyEnt[vl], ss.epolNearVal[vl])
		}
		ss.fullV[vl] = false
		ss.dirtyEnt[vl] = ss.dirtyEnt[vl][:0]
		ss.resumEpolNear(int(vl))
	}
	rep.DirtyEpolDrivers = len(ss.dirtyV)

	ss.energy = ss.sumEnergy()
	rep.Energy = ss.energy
	return rep, nil
}

// clearFrameMarks resets the previous frame's scratch marks via their id
// lists (O(previously dirty), not O(nodes)).
func (ss *Session) clearFrameMarks() {
	for _, l := range ss.movedA {
		ss.markA[l] = false
	}
	for _, l := range ss.movedQ {
		ss.markQ[l] = false
	}
	for _, l := range ss.dirtyRows {
		ss.markRow[l] = false
	}
	for _, vl := range ss.dirtyV {
		ss.markV[vl] = false
	}
	for _, l := range ss.listU {
		ss.markU[l] = false
	}
	for _, l := range ss.slotDirty {
		ss.markSlot[l] = false
	}
	ss.movedA, ss.movedQ = ss.movedA[:0], ss.movedQ[:0]
	ss.dirtyRows, ss.dirtyV = ss.dirtyRows[:0], ss.dirtyV[:0]
	ss.listU = ss.listU[:0]
	ss.slotDirty = ss.slotDirty[:0]
}

func (ss *Session) markDirtyRow(aLeaf int32) {
	if !ss.markRow[aLeaf] {
		ss.markRow[aLeaf] = true
		ss.dirtyRows = append(ss.dirtyRows, aLeaf)
	}
}

func (ss *Session) markDirtyV(vl int32) {
	if !ss.markV[vl] {
		ss.markV[vl] = true
		ss.dirtyV = append(ss.dirtyV, vl)
	}
}

func (ss *Session) markULeaf(l int32) {
	if !ss.markU[l] {
		ss.markU[l] = true
		ss.listU = append(ss.listU, l)
	}
}

// pushRadii recomputes every Born radius exactly from the cached sums and
// re-pushes to the energy solver the ones that drifted past
// RadiusTolerance relative to their pushed value, returning the push
// count. With markLeaves set, the owning leaf of every push is added to
// the frame's changed-input set; the resweep path recomputes every energy
// entry anyway and skips the marking. The push RULE is identical on both
// paths — pushes depend only on the frame stream, which is what keeps
// oracle and incremental sessions bitwise aligned.
func (ss *Session) pushRadii(markLeaves bool) int {
	rtol := ss.opts.RadiusTolerance
	pushed := 0
	for i := range ss.rTree {
		r := ss.bs.BornRadiusFromSums(int32(i), ss.sAtomNear[i]+ss.farTotal[ss.aLeafOf[i]])
		ss.rTree[i] = r
		d := r - ss.rPushed[i]
		if d < 0 {
			d = -d
		}
		if d > rtol*r {
			ss.rPushed[i] = r
			ss.es.SetRadius(int32(i), r)
			pushed++
			if markLeaves {
				ss.markULeaf(ss.aLeafOf[i])
			}
		}
	}
	return pushed
}

// epochBreach bubbles per-leaf epoch displacements bottom-up (children
// precede parents in reverse index order) and reports whether any node's
// displacement exceeds its frozen ball's slack margin.
func (ss *Session) epochBreach() bool {
	return bubbleBreach(ss.bs.TA, ss.dispEpochA, ss.nodeDispA, ss.opts.SlackFactor, ss.opts.MinSlack) ||
		bubbleBreach(ss.bs.TQ, ss.dispEpochQ, ss.nodeDispQ, ss.opts.SlackFactor, ss.opts.MinSlack)
}

// rederiveBorn rebuilds one Born driver segment against the refit ball of
// the driver's current points, recomputes its cached far values, marks the
// old and new partner rows dirty, and resets the driver's slack budget.
func (ss *Session) rederiveBorn(qLeaf int32) {
	ql := ss.qDense[qLeaf]
	ss.oldNear = append(ss.oldNear[:0], ss.bornNear[ql]...)
	for _, a := range ss.bornNear[ql] {
		ss.markDirtyRow(a)
	}
	c, r := currentBall(ss.bs.TQ, qLeaf)
	ss.bs.BuildBornDriverSlack(&ss.scratch, qLeaf, c, r, ss.opts.SlackFactor, ss.opts.MinSlack)
	ss.bornNear[ql] = appendANodes(ss.bornNear[ql][:0], ss.scratch.Near)
	ss.bornFar[ql] = appendANodes(ss.bornFar[ql][:0], ss.scratch.Far)
	ss.bornFarVal[ql] = ss.bornFarVal[ql][:0]
	for _, a := range ss.bornFar[ql] {
		ss.bornFarVal[ql] = append(ss.bornFarVal[ql], ss.bs.BornFarTerm(a, qLeaf))
	}
	for _, a := range ss.bornNear[ql] {
		ss.markDirtyRow(a)
	}
	// Rows entering or leaving this driver's near list are the rows whose
	// partner membership — and hence row-major slot layout — changes. Both
	// lists come out of the traversal in ascending node order, so the
	// symmetric difference is a single merge.
	i, j := 0, 0
	nw := ss.bornNear[ql]
	for i < len(ss.oldNear) && j < len(nw) {
		switch {
		case ss.oldNear[i] == nw[j]:
			i++
			j++
		case ss.oldNear[i] < nw[j]:
			ss.markSlotDirty(ss.oldNear[i])
			i++
		default:
			ss.markSlotDirty(nw[j])
			j++
		}
	}
	for ; i < len(ss.oldNear); i++ {
		ss.markSlotDirty(ss.oldNear[i])
	}
	for ; j < len(nw); j++ {
		ss.markSlotDirty(nw[j])
	}
	ss.resetRefQ(qLeaf, r)
}

func (ss *Session) markSlotDirty(aLeaf int32) {
	if !ss.markSlot[aLeaf] {
		ss.markSlot[aLeaf] = true
		ss.slotDirty = append(ss.slotDirty, aLeaf)
	}
}

// sizeRowBlocks sizes one row's block store to its current partner count;
// the values are rebuilt by whoever changed the layout.
func (ss *Session) sizeRowBlocks(aLeaf int32) {
	need := len(ss.bornPartners[aLeaf]) * int(ss.bs.TA.Nodes[aLeaf].Count)
	if cap(ss.rowBlk[aLeaf]) < need {
		ss.rowBlk[aLeaf] = make([]float64, need)
	} else {
		ss.rowBlk[aLeaf] = ss.rowBlk[aLeaf][:need]
	}
}

// rederiveEpol is rederiveBorn's energy-phase counterpart: the driver's
// near and far lists are rebuilt, its far sum recomputed from the frozen
// epoch aggregates, and its entry-value cache resized. The entry VALUES
// are left stale: an energy driver is only re-derived when its own atoms
// moved, which puts its leaf in the frame's changed-input set and forces a
// full segment re-evaluation later in the frame regardless.
func (ss *Session) rederiveEpol(aLeaf int32) {
	vl := int(ss.aDense[aLeaf])
	c, r := currentBall(ss.bs.TA, aLeaf)
	ss.es.BuildEpolDriverSlack(&ss.scratch, aLeaf, c, r, ss.opts.SlackFactor, ss.opts.MinSlack)
	ss.epolNear[vl] = append(ss.epolNear[vl][:0], ss.scratch.Near...)
	ss.epolFar[vl] = appendANodes(ss.epolFar[vl][:0], ss.scratch.Far)
	ss.epolNearVal[vl] = resizeF64(ss.epolNearVal[vl], len(ss.epolNear[vl]))
	ss.recomputeEpolFar(vl)
	ss.markDirtyV(int32(vl))
	lo, hi := ss.bs.TA.PointRange(aLeaf)
	copy(ss.refPosA[lo:hi], ss.bs.TA.Points[lo:hi])
	ss.dispRefA[aLeaf] = 0
	ss.refBallRA[aLeaf] = r
}

func (ss *Session) resetRefQ(qLeaf int32, ballR float64) {
	lo, hi := ss.bs.TQ.PointRange(qLeaf)
	copy(ss.refPosQ[lo:hi], ss.bs.TQ.Points[lo:hi])
	ss.dispRefQ[qLeaf] = 0
	ss.refBallRQ[qLeaf] = ballR
}

// rebuildBornPartners re-derives the reverse index (T_A leaf -> drivers
// whose near lists contain it, plus the entry position within each), in
// ascending driver order.
func (ss *Session) rebuildBornPartners() {
	for i := range ss.bornPartners {
		ss.bornPartners[i] = ss.bornPartners[i][:0]
		ss.bornPartnerPos[i] = ss.bornPartnerPos[i][:0]
	}
	for ql := range ss.bornNear {
		slots := ss.bornEntrySlot[ql][:0]
		for k, a := range ss.bornNear[ql] {
			ss.bornPartners[a] = append(ss.bornPartners[a], int32(ql))
			ss.bornPartnerPos[a] = append(ss.bornPartnerPos[a], int32(k))
			// Drivers are visited ascending, so the append position IS the
			// entry's final slot in the row's partner-ordered block store.
			slots = append(slots, int32(len(ss.bornPartners[a])-1))
		}
		ss.bornEntrySlot[ql] = slots
	}
}

func (ss *Session) rebuildEpolPartners() {
	for i := range ss.epolPartners {
		ss.epolPartners[i] = ss.epolPartners[i][:0]
		ss.epolPartnerPos[i] = ss.epolPartnerPos[i][:0]
	}
	for vl := range ss.epolNear {
		for k, p := range ss.epolNear[vl] {
			ss.epolPartners[p.A] = append(ss.epolPartners[p.A], int32(vl))
			ss.epolPartnerPos[p.A] = append(ss.epolPartnerPos[p.A], int32(k))
		}
	}
}

// recomputeFarSums rebuilds the canonical per-node far sums from the
// cached far-entry values (drivers ascending, entries in traversal order)
// and pushes them down the atoms tree.
func (ss *Session) recomputeFarSums() {
	for i := range ss.sNodeFar {
		ss.sNodeFar[i] = 0
	}
	for ql := range ss.bornFar {
		vals := ss.bornFarVal[ql]
		for k, a := range ss.bornFar[ql] {
			ss.sNodeFar[a] += vals[k]
		}
	}
	ss.bs.FarTotals(ss.sNodeFar, ss.farTotal)
}

// recomputeBornBlock re-evaluates one (driver, row) near entry into its
// cached block: the row range of the scratch is zeroed, the single entry
// runs through the SAME range evaluator every other path uses, and the
// result is copied out. Single-entry evaluation is the canonical value of
// an entry everywhere, so cached blocks are bitwise reproducible.
func (ss *Session) recomputeBornBlock(ql, k int) {
	a := ss.bornNear[ql][k]
	lo, hi := ss.bs.TA.PointRange(a)
	for i := lo; i < hi; i++ {
		ss.rowScratch[i] = 0
	}
	ss.rowPairs.Near = append(ss.rowPairs.Near[:0], core.NodePair{A: a, B: ss.bs.TQ.LeafIdx[ql]})
	ss.bs.EvalBornNearRange(&ss.rowPairs, 0, 1, ss.rowScratch)
	cnt := int(hi - lo)
	s := int(ss.bornEntrySlot[ql][k])
	copy(ss.rowBlk[a][s*cnt:(s+1)*cnt], ss.rowScratch[lo:hi])
}

// resumBornRow rebuilds one T_A leaf's near-field row from its row-major
// block store — plain float64 additions over a contiguous sweep, slot
// order being ascending driver order, the canonical order every full
// recompute uses.
func (ss *Session) resumBornRow(aLeaf int32) {
	lo, hi := ss.bs.TA.PointRange(aLeaf)
	row := ss.sAtomNear[lo:hi]
	for j := range row {
		row[j] = 0
	}
	cnt := int(hi - lo)
	blk := ss.rowBlk[aLeaf]
	for s := 0; s+cnt <= len(blk); s += cnt {
		b := blk[s : s+cnt]
		for j := range b {
			row[j] += b[j]
		}
	}
}

// recomputeDriverBlocks re-evaluates every cached block of one Born
// driver in a single range call: a driver's entries share its q-tile, and
// each entry writes a disjoint row range of the scratch, so the batched
// call produces every block bitwise as a single-entry call would.
func (ss *Session) recomputeDriverBlocks(ql int) {
	qNode := ss.bs.TQ.LeafIdx[ql]
	pairs := ss.rowPairs.Near[:0]
	for _, a := range ss.bornNear[ql] {
		lo, hi := ss.bs.TA.PointRange(a)
		for i := lo; i < hi; i++ {
			ss.rowScratch[i] = 0
		}
		pairs = append(pairs, core.NodePair{A: a, B: qNode})
	}
	ss.rowPairs.Near = pairs
	ss.bs.EvalBornNearRange(&ss.rowPairs, 0, len(pairs), ss.rowScratch)
	slots := ss.bornEntrySlot[ql]
	for k, a := range ss.bornNear[ql] {
		lo, hi := ss.bs.TA.PointRange(a)
		cnt := int(hi - lo)
		s := int(slots[k])
		copy(ss.rowBlk[a][s*cnt:(s+1)*cnt], ss.rowScratch[lo:hi])
	}
}

// resumEpolNear rebuilds one driver's near sum from its cached entry
// values in traversal order.
func (ss *Session) resumEpolNear(vl int) {
	var sum float64
	for _, v := range ss.epolNearVal[vl] {
		sum += v
	}
	ss.nearVal[vl] = sum
}

// recomputeEpolFar resums one energy driver's far sum; all inputs (node
// centers, charge bins) are epoch-frozen, so between re-derivations the
// cached value never changes.
func (ss *Session) recomputeEpolFar(vl int) {
	vNode := ss.bs.TA.LeafIdx[vl]
	var sum float64
	for _, u := range ss.epolFar[vl] {
		sum += ss.es.EpolFarTerm(u, vNode)
	}
	ss.farVal[vl] = sum
}

func (ss *Session) sumEnergy() float64 {
	var raw float64
	for vl := range ss.nearVal {
		raw += ss.nearVal[vl] + ss.farVal[vl]
	}
	return raw * core.EnergyScale()
}

// resweep recomputes every cached value — far entries, far sums, every
// near block and entry, every radius, every sum — from current state in
// canonical order, without touching the structure. The radius push stays
// tolerance gated (the rule must not depend on resweep cadence), so a
// resweep re-verifies the caches against the session's own semantics.
func (ss *Session) resweep() {
	for ql := range ss.bornFar {
		qLeaf := ss.bs.TQ.LeafIdx[ql]
		vals := ss.bornFarVal[ql][:0]
		for _, a := range ss.bornFar[ql] {
			vals = append(vals, ss.bs.BornFarTerm(a, qLeaf))
		}
		ss.bornFarVal[ql] = vals
	}
	ss.recomputeFarSums()
	for ql := range ss.bornNear {
		ss.recomputeDriverBlocks(ql)
	}
	for _, a := range ss.bs.TA.LeafIdx {
		ss.resumBornRow(a)
	}
	ss.pushRadii(false)
	for vl := range ss.nearVal {
		ss.es.EvalEpolNearEntryValues(ss.epolNear[vl], nil, ss.epolNearVal[vl])
		ss.resumEpolNear(vl)
		ss.recomputeEpolFar(vl)
	}
	ss.energy = ss.sumEnergy()
}

// refresh is the structural-refresh path: refit both trees' node geometry
// to the current points, then rebuild every segment, aggregate and value —
// including a fresh energy solver whose charge bins re-bin against the
// current Born radii — and reset every slack budget.
func (ss *Session) refresh() {
	ss.bs.RefreshGeometry()
	ss.rebuildStructure()
}

// rebuildStructure derives all driver segments, sums and values from the
// current (frozen-as-of-now) node geometry. Used at creation and after
// every refresh.
func (ss *Session) rebuildStructure() {
	sf, ms := ss.opts.SlackFactor, ss.opts.MinSlack
	ta, tq := ss.bs.TA, ss.bs.TQ

	for ql, qLeaf := range tq.LeafIdx {
		c, r := currentBall(tq, qLeaf)
		ss.bs.BuildBornDriverSlack(&ss.scratch, qLeaf, c, r, sf, ms)
		ss.bornNear[ql] = appendANodes(ss.bornNear[ql][:0], ss.scratch.Near)
		ss.bornFar[ql] = appendANodes(ss.bornFar[ql][:0], ss.scratch.Far)
		vals := ss.bornFarVal[ql][:0]
		for _, a := range ss.bornFar[ql] {
			vals = append(vals, ss.bs.BornFarTerm(a, qLeaf))
		}
		ss.bornFarVal[ql] = vals
		ss.refBallRQ[qLeaf] = r
	}
	ss.rebuildBornPartners()
	for _, a := range ta.LeafIdx {
		ss.sizeRowBlocks(a)
	}
	ss.recomputeFarSums()
	for ql := range ss.bornNear {
		ss.recomputeDriverBlocks(ql)
	}
	for _, a := range ta.LeafIdx {
		ss.resumBornRow(a)
	}
	for i := range ss.rTree {
		ss.rTree[i] = ss.bs.BornRadiusFromSums(int32(i), ss.sAtomNear[i]+ss.farTotal[ss.aLeafOf[i]])
	}
	copy(ss.rPushed, ss.rTree)

	// Fresh energy solver: re-bins charges against the current (exact)
	// radii and rebuilds every mirror from the current positions.
	ss.es = core.NewEpolSolver(ta, ss.charges, ss.bs.RadiiToOriginal(ss.rTree), ss.ecfg)
	for vl, aLeaf := range ta.LeafIdx {
		c, r := currentBall(ta, aLeaf)
		ss.es.BuildEpolDriverSlack(&ss.scratch, aLeaf, c, r, sf, ms)
		ss.epolNear[vl] = append(ss.epolNear[vl][:0], ss.scratch.Near...)
		ss.epolFar[vl] = appendANodes(ss.epolFar[vl][:0], ss.scratch.Far)
		ss.epolNearVal[vl] = resizeF64(ss.epolNearVal[vl], len(ss.epolNear[vl]))
		ss.refBallRA[aLeaf] = r
	}
	ss.rebuildEpolPartners()
	for vl := range ss.nearVal {
		ss.es.EvalEpolNearEntryValues(ss.epolNear[vl], nil, ss.epolNearVal[vl])
		ss.resumEpolNear(vl)
		ss.recomputeEpolFar(vl)
	}
	ss.energy = ss.sumEnergy()

	// Reset every slack budget: reference and epoch positions snap to the
	// current points, displacements to zero.
	copy(ss.refPosA, ta.Points)
	copy(ss.epochPosA, ta.Points)
	copy(ss.refPosQ, tq.Points)
	copy(ss.epochPosQ, tq.Points)
	zero(ss.dispRefA)
	zero(ss.dispEpochA)
	zero(ss.dispRefQ)
	zero(ss.dispEpochQ)
}

// --- small helpers -------------------------------------------------------

// currentBall computes the enclosing ball (centroid + max distance) of a
// node's CURRENT points with the same arithmetic octree.RefitAll uses, so
// at creation and right after a refresh it reproduces the frozen node
// geometry bitwise.
func currentBall(t *octree.Tree, node int32) (geom.Vec3, float64) {
	nd := &t.Nodes[node]
	var c geom.Vec3
	for i := nd.Start; i < nd.Start+nd.Count; i++ {
		c = c.Add(t.Points[i])
	}
	if nd.Count > 0 {
		c = c.Scale(1 / float64(nd.Count))
	}
	var r2 float64
	for i := nd.Start; i < nd.Start+nd.Count; i++ {
		if d := t.Points[i].Dist2(c); d > r2 {
			r2 = d
		}
	}
	return c, math.Sqrt(r2)
}

// leafDisp scans one leaf's point range and returns the maximum
// displacement against the reference and epoch snapshots.
func leafDisp(t *octree.Tree, leaf int32, ref, epoch []geom.Vec3) (dRef, dEpoch float64) {
	nd := &t.Nodes[leaf]
	var r2, e2 float64
	for i := nd.Start; i < nd.Start+nd.Count; i++ {
		p := t.Points[i]
		if d := p.Dist2(ref[i]); d > r2 {
			r2 = d
		}
		if d := p.Dist2(epoch[i]); d > e2 {
			e2 = d
		}
	}
	return math.Sqrt(r2), math.Sqrt(e2)
}

// bubbleBreach propagates per-leaf epoch displacements bottom-up (the
// linearized layout puts children after parents, so a reverse sweep sees
// children first) and reports whether any node's maximum point
// displacement exceeds the slack margin of its frozen ball.
func bubbleBreach(t *octree.Tree, leafDisp, nodeDisp []float64, sf, ms float64) bool {
	breach := false
	for n := len(t.Nodes) - 1; n >= 0; n-- {
		nd := &t.Nodes[n]
		d := 0.0
		if nd.Leaf {
			d = leafDisp[n]
		} else {
			for _, ch := range nd.Children {
				if ch != octree.NoChild && nodeDisp[ch] > d {
					d = nodeDisp[ch]
				}
			}
		}
		nodeDisp[n] = d
		if d > core.SlackMargin(nd.Radius, sf, ms) {
			breach = true
		}
	}
	return breach
}

func appendANodes(dst []int32, pairs []core.NodePair) []int32 {
	for _, p := range pairs {
		dst = append(dst, p.A)
	}
	return dst
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func zero(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
