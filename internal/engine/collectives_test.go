package engine

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"octgb/internal/cluster"
	"octgb/internal/testutil"
)

// Acceptance tests for the topology-aware collective layer: every engine
// must reproduce the star-baseline energies to 1e-12 with identical Stats
// counters, on both the in-process and the TCP transports.

func TestTopoEnginesMatchStarBaseline(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	pr := testProblem(500, 91)
	cases := []struct {
		name string
		k    Kind
		o    Options
	}{
		{"OctMPI/P4", OctMPI, Options{Ranks: 4}},
		{"OctMPI/P3", OctMPI, Options{Ranks: 3}},
		{"OctMPICilk/P3xT2", OctMPICilk, Options{Ranks: 3, Threads: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oStar := tc.o
			oStar.TopoCollectives = Off
			star, err := RunReal(pr, tc.k, oStar)
			if err != nil {
				t.Fatal(err)
			}
			oTopo := tc.o
			oTopo.TopoCollectives = On
			topo, err := RunReal(pr, tc.k, oTopo)
			if err != nil {
				t.Fatal(err)
			}
			if e := relErr(star.Energy, topo.Energy); e > 1e-12 {
				t.Fatalf("energy: star %v vs topo %v (rel %v)", star.Energy, topo.Energy, e)
			}
			if star.BornStats != topo.BornStats {
				t.Fatalf("BornStats: star %+v vs topo %+v", star.BornStats, topo.BornStats)
			}
			if star.EpolStats != topo.EpolStats {
				t.Fatalf("EpolStats: star %+v vs topo %+v", star.EpolStats, topo.EpolStats)
			}
			for i := range star.BornRadii {
				if e := relErr(star.BornRadii[i], topo.BornRadii[i]); e > 1e-12 {
					t.Fatalf("radius %d: star %v vs topo %v", i, star.BornRadii[i], topo.BornRadii[i])
				}
			}
		})
	}
}

func TestDistDataTopoMatchesStar(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	pr := testProblem(500, 92)
	oStar := Options{TopoCollectives: Off}
	star, err := RunDistributedDataEnergy(pr, 4, oStar)
	if err != nil {
		t.Fatal(err)
	}
	oTopo := Options{TopoCollectives: On}
	topo, err := RunDistributedDataEnergy(pr, 4, oTopo)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(star, topo); e > 1e-12 {
		t.Fatalf("distdata energy: star %v vs topo %v (rel %v)", star, topo, e)
	}
}

// overTCP runs fn on every rank of a loopback TCP group (star or mesh).
func overTCP(t *testing.T, size int, mesh bool, fn func(c cluster.Comm, rank int) error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	var opts []cluster.TCPOption
	if mesh {
		opts = append(opts, cluster.WithMesh())
	}

	errs := make([]error, size)
	comms := make([]cluster.Comm, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := cluster.DialTCP(addr, r, size, opts...)
			if err != nil {
				errs[r] = err
				return
			}
			comms[r] = c
			errs[r] = fn(c, r)
		}(r)
	}
	root, err := cluster.NewTCPRoot(ln, size, opts...)
	if err != nil {
		t.Fatal(err)
	}
	comms[0] = root
	errs[0] = fn(root, 0)
	wg.Wait()
	for _, c := range comms {
		if cl, ok := c.(io.Closer); ok {
			cl.Close()
		}
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestRunRankOverTCPMatchesLocal(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	pr := testProblem(400, 93)
	P := 3
	base, err := RunReal(pr, OctMPI, Options{Ranks: P, TopoCollectives: Off})
	if err != nil {
		t.Fatal(err)
	}
	for _, mesh := range []bool{false, true} {
		t.Run(fmt.Sprintf("mesh=%v", mesh), func(t *testing.T) {
			reps := make([]RealReport, P)
			overTCP(t, P, mesh, func(c cluster.Comm, rank int) error {
				rep, err := RunRank(c, pr, Options{})
				reps[rank] = rep
				return err
			})
			agg := reps[0]
			for _, r := range reps[1:] {
				if e := relErr(r.Energy, base.Energy); e > 1e-12 {
					t.Fatalf("rank energy %v vs baseline %v (rel %v)", r.Energy, base.Energy, e)
				}
				agg.BornStats.Add(r.BornStats)
				agg.EpolStats.Add(r.EpolStats)
			}
			if e := relErr(reps[0].Energy, base.Energy); e > 1e-12 {
				t.Fatalf("root energy %v vs baseline %v (rel %v)", reps[0].Energy, base.Energy, e)
			}
			if agg.BornStats != base.BornStats {
				t.Fatalf("BornStats: tcp %+v vs baseline %+v", agg.BornStats, base.BornStats)
			}
			if agg.EpolStats != base.EpolStats {
				t.Fatalf("EpolStats: tcp %+v vs baseline %+v", agg.EpolStats, base.EpolStats)
			}
		})
	}
}

func TestDistDataOverTCPMesh(t *testing.T) {
	defer testutil.Watchdog(t, 0)()
	pr := testProblem(400, 94)
	P := 3
	want, err := RunDistributedDataEnergy(pr, P, Options{TopoCollectives: Off})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, P)
	overTCP(t, P, true, func(c cluster.Comm, rank int) error {
		e, err := RunDistributedDataEnergyRank(c, pr, Options{})
		got[rank] = e
		return err
	})
	for r, e := range got {
		if re := relErr(e, want); re > 1e-12 {
			t.Fatalf("rank %d: mesh energy %v vs local %v (rel %v)", r, e, want, re)
		}
	}
}
