package engine

import (
	"strconv"
	"time"

	"octgb/internal/obs"
	"octgb/internal/sched"
)

// Metric names and help strings recorded by the engines (full inventory in
// DESIGN.md §10).
const (
	phaseMetric = "octgb_engine_phase_seconds"
	phaseHelp   = "Wall-clock time of one engine phase on one rank (Fig. 4 steps)."
	schedHelp   = "Work-stealing scheduler activity, summed over completed runs."
)

// phaseObs carries the per-rank phase instrumentation of one engine run:
// the four phase histograms (looked up once, so the per-lap cost is an
// Observe) and the root span the per-phase spans parent under. The zero
// value — produced for a nil Observer — is fully inert: all histograms are
// nil (Observe is a no-op) and span recording is skipped, so the
// observability-off path allocates nothing.
type phaseObs struct {
	ob                     *obs.Observer
	rank                   int
	root                   uint64
	start                  time.Time
	born, push, epol, comm *obs.Histogram
}

// newPhaseObs resolves the phase histograms for one rank and opens the
// run's root span.
func newPhaseObs(ob *obs.Observer, rank int) phaseObs {
	po := phaseObs{ob: ob, rank: rank}
	if ob == nil {
		return po
	}
	po.start = time.Now()
	po.root = ob.NextID()
	rl := `rank="` + strconv.Itoa(rank) + `"`
	po.born = ob.Histogram(phaseMetric, `phase="born",`+rl, phaseHelp)
	po.push = ob.Histogram(phaseMetric, `phase="push",`+rl, phaseHelp)
	po.epol = ob.Histogram(phaseMetric, `phase="epol",`+rl, phaseHelp)
	po.comm = ob.Histogram(phaseMetric, `phase="comm",`+rl, phaseHelp)
	return po
}

// record stores one completed phase segment: a histogram observation and a
// child span. name must be a constant ("engine.born", …) so the nil path
// performs no string building.
func (po *phaseObs) record(h *obs.Histogram, name string, start time.Time, d time.Duration) {
	h.Observe(d)
	if po.ob != nil {
		po.ob.Trace.RecordID(po.ob.NextID(), name, po.root, po.rank, start, d)
	}
}

// finish closes the run's root span.
func (po *phaseObs) finish(name string) {
	if po.ob == nil {
		return
	}
	po.ob.Trace.RecordID(po.root, name, 0, po.rank, po.start, time.Since(po.start))
}

// observeBuild records the octree-construction phase (step 1), which runs
// once per problem rather than per rank.
func observeBuild(ob *obs.Observer, start time.Time, d time.Duration) {
	if ob == nil {
		return
	}
	ob.Histogram(phaseMetric, `phase="build",rank="0"`, phaseHelp).Observe(d)
	ob.Record("engine.build", 0, 0, start, d)
}

// observePhase records one self-contained phase (histogram + root-level
// span) — the shared-memory engine's form, where phases do not nest under
// a per-rank root span. No-op on a nil observer.
func observePhase(ob *obs.Observer, phase, span string, rank int, start time.Time, d time.Duration) {
	if ob == nil {
		return
	}
	ob.Histogram(phaseMetric, `phase="`+phase+`",rank="`+strconv.Itoa(rank)+`"`, phaseHelp).Observe(d)
	ob.Record(span, 0, rank, start, d)
}

// recordSchedStats adds one run's scheduler activity to the global
// counters. Called from the public entry points only (RunReal, RunRank,
// Prepare, EvalEpol) so composed paths are not double counted.
func recordSchedStats(ob *obs.Observer, s sched.Stats) {
	if ob == nil {
		return
	}
	ob.Counter("octgb_sched_executed_total", "", schedHelp).Add(s.Executed)
	ob.Counter("octgb_sched_steals_total", "", schedHelp).Add(s.Steals)
	ob.Counter("octgb_sched_failed_steals_total", "", schedHelp).Add(s.FailedSteals)
	ob.Counter("octgb_sched_parks_total", "", schedHelp).Add(s.Parks)
}
