package engine

import (
	"fmt"
	"math"
	"sort"

	"octgb/internal/cluster"
	"octgb/internal/core"
	"octgb/internal/geom"
	"octgb/internal/partition"
)

// RunDistributedDataEnergy executes the energy phase with GENUINELY
// distributed atom data — the working implementation of the paper's §VI
// future-work direction ("distributing data as well as computation"):
//
//   - every rank keeps the tree skeleton (node geometry + charge bins) and
//     the atom payload of its OWN leaf segment; every other atom's charge,
//     Born radius and position are poisoned with NaN;
//   - ranks exchange ghost-leaf payloads point-to-point: each rank
//     requests exactly the leaves its near field touches (NeededLeaves)
//     and each owner answers with the payload;
//   - every rank then runs APPROX-EPOL over its owned leaves and the
//     partial energies are reduced.
//
// The ghost exchange is overlapped with compute: a rank's owned leaves
// split into purely-local ones (near field entirely resident) and boundary
// ones (near field touches a ghost), and the purely-local leaves are
// evaluated BETWEEN sending the payloads this rank owes and receiving the
// ghosts it needs — the paper's compute/communication overlap applied to
// the p2p phase.
//
// Because non-resident data is NaN, a finite result proves the ghost
// analysis was exactly sufficient; tests additionally check the energy
// equals the replicated-data engines'. Born radii are computed with the
// ordinary replicated Born phase first (distributing the Born phase's
// q-points is a further step the paper leaves open).
func RunDistributedDataEnergy(pr *Problem, P int, o Options) (float64, error) {
	o = o.withDefaults(OctMPI)
	if P < 1 {
		P = 1
	}
	setup := newDistDataSetup(pr, P, o)
	energies := make([]float64, P)
	err := cluster.RunLocalAlgo(P, nil, collectiveAlgo(o), func(c cluster.Comm) error {
		e, err := setup.runRank(c)
		if err != nil {
			return err
		}
		energies[c.Rank()] = e
		return nil
	})
	if err != nil {
		return 0, err
	}
	return energies[0], nil
}

// RunDistributedDataEnergyRank is the per-process entry of the
// distributed-data energy phase over an arbitrary communicator with
// point-to-point messaging (a TCP mesh rank, for example): every process
// loads the same inputs and calls this with its own Comm. The shared
// read-only setup (Born phase, full solver, leaf ownership) is rebuilt
// per process, exactly like RunRank's replicated octrees.
func RunDistributedDataEnergyRank(c cluster.Comm, pr *Problem, o Options) (float64, error) {
	o = o.withDefaults(OctMPI)
	return newDistDataSetup(pr, c.Size(), o).runRank(c)
}

// distDataSetup is the shared read-only state of one distributed-data run:
// the fully-populated solver (the data ranks restrict away), the leaf
// partition and the leaf→owner map.
type distDataSetup struct {
	full      *core.EpolSolver
	segs      []partition.Segment
	leafNodes []int32
	ownerOf   map[int32]int
	useFlat   bool
}

func newDistDataSetup(pr *Problem, P int, o Options) *distDataSetup {
	s := &distDataSetup{useFlat: o.UseFlatKernels.enabled(true)}
	// Born radii via the standard replicated pipeline.
	bc := core.BornConfig{Eps: o.BornEps, CriterionPower: o.CriterionPower, LeafSize: o.LeafSize, Precision: o.Precision}
	bs := core.NewBornSolver(pr.Mol, pr.QPts, bc)
	sNode, sAtom := bs.NewAccumulators()
	if s.useFlat {
		bs.EvalBornList(bs.BuildBornList(0, bs.NumQLeaves()), sNode, sAtom)
	} else {
		for l := 0; l < bs.NumQLeaves(); l++ {
			bs.AccumulateQLeaf(l, sNode, sAtom)
		}
	}
	rTree := make([]float64, pr.Mol.N())
	bs.PushIntegrals(sNode, sAtom, 0, int32(pr.Mol.N()), rTree)
	R := bs.RadiiToOriginal(rTree)
	s.full = core.NewEpolSolver(bs.TA, pr.Charges, R, core.EpolConfig{Eps: o.EpolEps, Math: o.Math, Precision: o.Precision})

	nLeaves := s.full.NumLeaves()
	s.segs = partition.Even(nLeaves, P)
	s.leafNodes = s.full.T.Leaves()
	s.ownerOf = make(map[int32]int, nLeaves)
	for r, seg := range s.segs {
		for l := seg.Lo; l < seg.Hi; l++ {
			s.ownerOf[s.leafNodes[l]] = r
		}
	}
	return s
}

// runRank is the per-rank body: ghost analysis, payload exchange with
// purely-local evaluation overlapped, boundary evaluation, reduction.
func (s *distDataSetup) runRank(c cluster.Comm) (float64, error) {
	msgr, ok := c.(cluster.Messenger)
	if !ok {
		return 0, fmt.Errorf("engine: transport lacks point-to-point messaging")
	}
	full, ownerOf := s.full, s.ownerOf
	rank := c.Rank()
	P := c.Size()
	seg := s.segs[rank]

	// Resident set: owned leaves. Ghost set: needed-but-not-owned. Leaves
	// whose near field is entirely resident are "purely local" — they can
	// be evaluated while the ghost payloads are still in flight.
	owned := s.leafNodes[seg.Lo:seg.Hi]
	ghostSet := map[int32]bool{}
	pureLocal := make([]bool, seg.Len())
	for l := seg.Lo; l < seg.Hi; l++ {
		localOnly := true
		for _, need := range full.NeededLeaves(l) {
			if ownerOf[need] != rank {
				ghostSet[need] = true
				localOnly = false
			}
		}
		pureLocal[l-seg.Lo] = localOnly
	}
	ghosts := make([]int32, 0, len(ghostSet))
	for g := range ghostSet {
		ghosts = append(ghosts, g)
	}
	sort.Slice(ghosts, func(i, j int) bool { return ghosts[i] < ghosts[j] })

	// This rank's restricted (NaN-poisoned) solver.
	local := full.Restrict(owned)

	// Publish per-rank request counts, then the requests themselves,
	// via collectives (the request metadata is tiny); answer each
	// request point-to-point with the leaf payload.
	reqCounts := make([]int, P)
	counts := make([]float64, P)
	counts[rank] = float64(len(ghosts))
	if err := c.AllreduceSum(counts); err != nil {
		return 0, err
	}
	total := 0
	for r := range counts {
		reqCounts[r] = int(counts[r])
		total += reqCounts[r]
	}
	reqSeg := make([]float64, len(ghosts))
	for i, g := range ghosts {
		reqSeg[i] = float64(g)
	}
	allReqs := make([]float64, total)
	if err := c.Allgatherv(reqSeg, reqCounts, allReqs); err != nil {
		return 0, err
	}

	// Serve requests owned by this rank (deterministic order:
	// requester rank, then request order). Send never blocks, so every
	// payload this rank owes is on the wire before any compute starts.
	at := 0
	for r := 0; r < P; r++ {
		for k := 0; k < reqCounts[r]; k++ {
			leaf := int32(allReqs[at])
			at++
			if ownerOf[leaf] != rank {
				continue
			}
			q, rad, pts := full.ResidentData(leaf)
			payload := make([]float64, 0, 2+5*len(q))
			payload = append(payload, float64(leaf), float64(len(q)))
			for i := range q {
				payload = append(payload, q[i], rad[i], pts[i].X, pts[i].Y, pts[i].Z)
			}
			if err := msgr.Send(r, payload); err != nil {
				return 0, err
			}
		}
	}

	// Overlap: evaluate the purely-local leaves while the ghost payloads
	// are in flight. Only the summation order differs from evaluating all
	// owned leaves in segment order (~1e-15 relative).
	var raw float64
	var list core.InteractionList
	evalLeaf := func(l int) error {
		var e float64
		if s.useFlat {
			e, _ = local.EvalEpolList(local.BuildEpolListInto(&list, l, l+1))
		} else {
			e, _ = local.LeafEnergy(l)
		}
		if math.IsNaN(e) {
			return fmt.Errorf("engine: rank %d leaf %d touched non-resident data (ghost set insufficient)", rank, l)
		}
		raw += e
		return nil
	}
	for l := seg.Lo; l < seg.Hi; l++ {
		if pureLocal[l-seg.Lo] {
			if err := evalLeaf(l); err != nil {
				return 0, err
			}
		}
	}

	// Receive this rank's ghosts (one message per ghost, from its owner,
	// in this rank's request order); payloads go back to the transport's
	// buffer pool once parsed.
	for _, g := range ghosts {
		payload, err := msgr.Recv(ownerOf[g])
		if err != nil {
			return 0, err
		}
		leaf := int32(payload[0])
		if leaf != g {
			return 0, fmt.Errorf("engine: ghost stream misordered: got leaf %d, want %d", leaf, g)
		}
		n := int(payload[1])
		q := make([]float64, n)
		rad := make([]float64, n)
		pts := make([]geom.Vec3, n)
		for i := 0; i < n; i++ {
			base := 2 + 5*i
			q[i], rad[i] = payload[base], payload[base+1]
			pts[i] = geom.V(payload[base+2], payload[base+3], payload[base+4])
		}
		cluster.ReleaseBuffer(payload)
		local.SetResident(leaf, q, rad, pts)
	}

	// Boundary leaves: near field now fully resident. The flat path
	// exercises the same residency contract: list construction reads only
	// the shared skeleton, and the SoA kernels touch only the resident
	// point payloads (non-resident coordinates are NaN, so a finite sum
	// still proves the ghost set sufficient).
	for l := seg.Lo; l < seg.Hi; l++ {
		if !pureLocal[l-seg.Lo] {
			if err := evalLeaf(l); err != nil {
				return 0, err
			}
		}
	}

	ebuf := []float64{raw}
	if err := c.AllreduceSum(ebuf); err != nil {
		return 0, err
	}
	return ebuf[0] * core.EnergyScale(), nil
}

// Ghost message ordering: messages between a fixed (owner, requester) pair
// are sent in the requester's (ascending) request order and received the
// same way, so the per-pair streams line up; the embedded leaf id is
// asserted on receipt as a belt-and-braces check.
