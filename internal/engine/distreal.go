package engine

import (
	"fmt"
	"math"
	"sort"

	"octgb/internal/cluster"
	"octgb/internal/core"
	"octgb/internal/geom"
	"octgb/internal/partition"
)

// RunDistributedDataEnergy executes the energy phase with GENUINELY
// distributed atom data — the working implementation of the paper's §VI
// future-work direction ("distributing data as well as computation"):
//
//   - every rank keeps the tree skeleton (node geometry + charge bins) and
//     the atom payload of its OWN leaf segment; every other atom's charge,
//     Born radius and position are poisoned with NaN;
//   - ranks exchange ghost-leaf payloads point-to-point: each rank
//     requests exactly the leaves its near field touches (NeededLeaves)
//     and each owner answers with the payload;
//   - every rank then runs APPROX-EPOL over its owned leaves and the
//     partial energies are reduced.
//
// Because non-resident data is NaN, a finite result proves the ghost
// analysis was exactly sufficient; tests additionally check the energy
// equals the replicated-data engines'. Born radii are computed with the
// ordinary replicated Born phase first (distributing the Born phase's
// q-points is a further step the paper leaves open).
func RunDistributedDataEnergy(pr *Problem, P int, o Options) (float64, error) {
	o = o.withDefaults(OctMPI)
	if P < 1 {
		P = 1
	}
	// Shared read-only setup: Born radii via the standard pipeline.
	useFlat := o.UseFlatKernels.enabled(true)
	bc := core.BornConfig{Eps: o.BornEps, CriterionPower: o.CriterionPower, LeafSize: o.LeafSize}
	bs := core.NewBornSolver(pr.Mol, pr.QPts, bc)
	sNode, sAtom := bs.NewAccumulators()
	if useFlat {
		bs.EvalBornList(bs.BuildBornList(0, bs.NumQLeaves()), sNode, sAtom)
	} else {
		for l := 0; l < bs.NumQLeaves(); l++ {
			bs.AccumulateQLeaf(l, sNode, sAtom)
		}
	}
	rTree := make([]float64, pr.Mol.N())
	bs.PushIntegrals(sNode, sAtom, 0, int32(pr.Mol.N()), rTree)
	R := bs.RadiiToOriginal(rTree)
	full := core.NewEpolSolver(bs.TA, pr.Charges, R, core.EpolConfig{Eps: o.EpolEps, Math: o.Math})

	nLeaves := full.NumLeaves()
	segs := partition.Even(nLeaves, P)
	leafNodes := full.T.Leaves()
	// Owner rank of each leaf node index.
	ownerOf := make(map[int32]int, nLeaves)
	for r, seg := range segs {
		for l := seg.Lo; l < seg.Hi; l++ {
			ownerOf[leafNodes[l]] = r
		}
	}

	energies := make([]float64, P)
	err := cluster.RunLocal(P, nil, func(c cluster.Comm) error {
		msgr, ok := c.(cluster.Messenger)
		if !ok {
			return fmt.Errorf("engine: transport lacks point-to-point messaging")
		}
		rank := c.Rank()
		seg := segs[rank]

		// Resident set: owned leaves; ghost set: needed-but-not-owned.
		owned := leafNodes[seg.Lo:seg.Hi]
		ghostSet := map[int32]bool{}
		for l := seg.Lo; l < seg.Hi; l++ {
			for _, need := range full.NeededLeaves(l) {
				if ownerOf[need] != rank {
					ghostSet[need] = true
				}
			}
		}
		ghosts := make([]int32, 0, len(ghostSet))
		for g := range ghostSet {
			ghosts = append(ghosts, g)
		}
		sort.Slice(ghosts, func(i, j int) bool { return ghosts[i] < ghosts[j] })

		// This rank's restricted (NaN-poisoned) solver.
		local := full.Restrict(owned)

		// Publish per-rank request counts, then the requests themselves,
		// via collectives (the request metadata is tiny); answer each
		// request point-to-point with the leaf payload.
		reqCounts := make([]int, P)
		counts := make([]float64, P)
		counts[rank] = float64(len(ghosts))
		if err := c.AllreduceSum(counts); err != nil {
			return err
		}
		total := 0
		for r := range counts {
			reqCounts[r] = int(counts[r])
			total += reqCounts[r]
		}
		reqSeg := make([]float64, len(ghosts))
		for i, g := range ghosts {
			reqSeg[i] = float64(g)
		}
		allReqs := make([]float64, total)
		if err := c.Allgatherv(reqSeg, reqCounts, allReqs); err != nil {
			return err
		}

		// Serve requests owned by this rank (deterministic order:
		// requester rank, then request order).
		at := 0
		for r := 0; r < P; r++ {
			for k := 0; k < reqCounts[r]; k++ {
				leaf := int32(allReqs[at])
				at++
				if ownerOf[leaf] != rank {
					continue
				}
				q, rad, pts := full.ResidentData(leaf)
				payload := make([]float64, 0, 2+5*len(q))
				payload = append(payload, float64(leaf), float64(len(q)))
				for i := range q {
					payload = append(payload, q[i], rad[i], pts[i].X, pts[i].Y, pts[i].Z)
				}
				if err := msgr.Send(r, payload); err != nil {
					return err
				}
			}
		}

		// Receive this rank's ghosts (one message per ghost, from its
		// owner, in this rank's request order).
		for _, g := range ghosts {
			payload, err := msgr.Recv(ownerOf[g])
			if err != nil {
				return err
			}
			leaf := int32(payload[0])
			if leaf != g {
				return fmt.Errorf("engine: ghost stream misordered: got leaf %d, want %d", leaf, g)
			}
			n := int(payload[1])
			q := make([]float64, n)
			rad := make([]float64, n)
			pts := make([]geom.Vec3, n)
			for i := 0; i < n; i++ {
				base := 2 + 5*i
				q[i], rad[i] = payload[base], payload[base+1]
				pts[i] = geom.V(payload[base+2], payload[base+3], payload[base+4])
			}
			local.SetResident(leaf, q, rad, pts)
		}

		// Energy over owned leaves with only resident data. The flat path
		// exercises the same residency contract: list construction reads
		// only the shared skeleton, and the SoA kernels touch only the
		// resident point payloads (non-resident coordinates are NaN, so a
		// finite sum still proves the ghost set sufficient).
		var raw float64
		if useFlat {
			raw, _ = local.EvalEpolList(local.BuildEpolList(seg.Lo, seg.Hi))
		} else {
			for l := seg.Lo; l < seg.Hi; l++ {
				e, _ := local.LeafEnergy(l)
				raw += e
			}
		}
		if math.IsNaN(raw) {
			return fmt.Errorf("engine: rank %d touched non-resident data (ghost set insufficient)", rank)
		}
		ebuf := []float64{raw}
		if err := c.AllreduceSum(ebuf); err != nil {
			return err
		}
		energies[rank] = ebuf[0] * core.EnergyScale()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return energies[0], nil
}

// Ghost message ordering: messages between a fixed (owner, requester) pair
// are sent in the requester's (ascending) request order and received the
// same way, so the per-pair streams line up; the embedded leaf id is
// asserted on receipt as a belt-and-braces check.
