package engine

import (
	"fmt"
	"time"

	"octgb/internal/cluster"
	"octgb/internal/core"
	"octgb/internal/gb"
	"octgb/internal/obs"
	"octgb/internal/partition"
	"octgb/internal/sched"
)

// collectiveAlgo maps the TopoCollectives toggle onto the cluster layer's
// algorithm selector for in-process groups.
func collectiveAlgo(o Options) cluster.Algorithm {
	if o.TopoCollectives.enabled(true) {
		return cluster.Topo
	}
	return cluster.Star
}

// RealReport is the result of a genuinely executed parallel run.
type RealReport struct {
	Energy    float64
	BornRadii []float64 // original order
	Wall      time.Duration
	BornStats core.Stats
	EpolStats core.Stats
	Sched     sched.Stats // aggregated work-stealing statistics
	Phases    PhaseTimings
}

// PhaseTimings is rank 0's wall-clock breakdown of one run, matching the
// phases of the paper's Fig. 4.
type PhaseTimings struct {
	Born time.Duration // steps 1–2: Born integrals
	Push time.Duration // step 4: push integrals to atoms
	Epol time.Duration // step 6: energy traversal
	Comm time.Duration // steps 3, 5, 7: collectives
}

// RunReal executes the engine with real parallelism: o.Ranks in-process
// communicator ranks (goroutines) each driving a work-stealing pool of
// o.Threads workers. Wall time is measured. Note: in-process ranks share
// the immutable octrees (the trees are read-only after construction);
// genuine per-process replication is available through cmd/epolnode's TCP
// ranks. Results are identical either way — sharing affects only memory.
func RunReal(pr *Problem, k Kind, o Options) (RealReport, error) {
	o = o.withDefaults(k)
	if err := o.Validate(); err != nil {
		return RealReport{}, err
	}
	start := time.Now()

	var rep RealReport
	switch k {
	case Naive:
		rep = runNaiveReal(pr, o)
	case OctCilk:
		rep = runCilkReal(pr, o)
	default:
		r, err := runDistributedReal(pr, o)
		if err != nil {
			return RealReport{}, err
		}
		rep = r
	}
	rep.Wall = time.Since(start)
	recordSchedStats(o.Observe, rep.Sched)
	return rep, nil
}

// runNaiveReal evaluates the exact reference, parallelized over atoms.
func runNaiveReal(pr *Problem, o Options) RealReport {
	pool := sched.NewPool(o.Threads)
	n := pr.Mol.N()
	R := gb.BornRadiiR6(pr.Mol, pr.QPts)
	var rep RealReport
	rep.BornRadii = R
	rep.BornStats = core.Stats{NearPairs: int64(n) * int64(len(pr.QPts))}
	partial := make([]float64, pool.Workers())
	tau := gb.Tau(gb.SolventDielectric)
	rep.Sched = pool.ParallelFor(n, 0, func(w, lo, hi int) {
		var sum float64
		for i := lo; i < hi; i++ {
			ai := &pr.Mol.Atoms[i]
			sum += ai.Charge * ai.Charge / R[i]
			for j := i + 1; j < n; j++ {
				aj := &pr.Mol.Atoms[j]
				sum += 2 * gb.PairTerm(ai.Charge, aj.Charge, ai.Pos.Dist2(aj.Pos), R[i], R[j], o.Math)
			}
		}
		partial[w] += sum
	})
	var raw float64
	for _, p := range partial {
		raw += p
	}
	rep.Energy = -0.5 * tau * gb.CoulombConstant * raw
	rep.EpolStats = core.Stats{NearPairs: int64(n) * int64(n)}
	return rep
}

// evalBornListParallel evaluates a Born interaction list with the pool —
// far and near entries form one combined index space that the workers
// chunk and steal — reducing per-worker private accumulators into
// sNode/sAtom.
func evalBornListParallel(bs *core.BornSolver, list *core.InteractionList, pool *sched.Pool, sNode, sAtom []float64) sched.Stats {
	nf := len(list.Far)
	total := nf + len(list.Near)
	if total == 0 {
		return sched.Stats{}
	}
	accN := make([][]float64, pool.Workers())
	accA := make([][]float64, pool.Workers())
	st := pool.ParallelFor(total, 0, func(w, lo, hi int) {
		if accN[w] == nil {
			accN[w], accA[w] = bs.NewAccumulators()
		}
		if lo < nf {
			fhi := hi
			if fhi > nf {
				fhi = nf
			}
			bs.EvalBornFarRange(list, lo, fhi, accN[w])
		}
		if hi > nf {
			nlo := lo
			if nlo < nf {
				nlo = nf
			}
			bs.EvalBornNearRange(list, nlo-nf, hi-nf, accA[w])
		}
	})
	for w := range accN {
		if accN[w] == nil {
			continue
		}
		for i := range sNode {
			sNode[i] += accN[w][i]
		}
		for i := range sAtom {
			sAtom[i] += accA[w][i]
		}
	}
	return st
}

// evalEpolListParallel evaluates an energy interaction list with the pool
// and returns the raw ordered-pair sum.
func evalEpolListParallel(es *core.EpolSolver, list *core.InteractionList, pool *sched.Pool) (float64, sched.Stats) {
	nn := len(list.Near)
	total := nn + len(list.Far)
	if total == 0 {
		return 0, sched.Stats{}
	}
	partial := make([]float64, pool.Workers())
	st := pool.ParallelFor(total, 0, func(w, lo, hi int) {
		var sum float64
		if lo < nn {
			nhi := hi
			if nhi > nn {
				nhi = nn
			}
			sum += es.EvalEpolNearRange(list, lo, nhi)
		}
		if hi > nn {
			flo := lo
			if flo < nn {
				flo = nn
			}
			sum += es.EvalEpolFarRange(list, flo-nn, hi-nn)
		}
		partial[w] += sum
	})
	var raw float64
	for _, p := range partial {
		raw += p
	}
	return raw, st
}

// runCilkReal executes the dual-tree algorithm with one rank and a
// work-stealing pool: by default the two-phase flat path (dual interaction
// lists + SoA kernels), or the recursive dual-tree frontier when
// UseFlatKernels is Off. It is the composition of the preprocessing half
// (prepareCilk: trees + Born radii) and the evaluation half
// ((*Prepared).evalEpol) — the same two halves the serving layer runs
// separately around its prepared-problem cache, so the cold path and the
// cached path are one code path (see prepared.go).
func runCilkReal(pr *Problem, o Options) RealReport {
	return prepareCilk(pr, o).evalEpol(o)
}

// RunRank executes one rank of the Fig. 4 algorithm over an arbitrary
// communicator — the entry point for genuine multi-process deployments
// (cmd/epolnode): every process loads the same inputs, builds its own
// octrees (step 1, replicated data as in the paper), and calls RunRank.
func RunRank(c cluster.Comm, pr *Problem, o Options) (RealReport, error) {
	o = o.withDefaults(OctMPICilk)
	o.Ranks = c.Size()
	bc := core.BornConfig{Eps: o.BornEps, CriterionPower: o.CriterionPower, LeafSize: o.LeafSize, Precision: o.Precision}
	buildStart := time.Now()
	bs := core.NewBornSolver(pr.Mol, pr.QPts, bc)
	observeBuild(o.Observe, buildStart, time.Since(buildStart))
	rep, err := runRank(c, bs, pr, o)
	if err == nil {
		recordSchedStats(o.Observe, rep.Sched)
	}
	return rep, err
}

// runDistributedReal executes OCT_MPI (Threads == 1) or OCT_MPI+CILK over
// in-process communicator ranks, following the paper's Fig. 4 step by step.
func runDistributedReal(pr *Problem, o Options) (RealReport, error) {
	// Step 1: octrees. Built once; immutable thereafter (in-process ranks
	// share them, see RunReal doc).
	bc := core.BornConfig{Eps: o.BornEps, CriterionPower: o.CriterionPower, LeafSize: o.LeafSize, Precision: o.Precision}
	buildStart := time.Now()
	bs := core.NewBornSolver(pr.Mol, pr.QPts, bc)
	observeBuild(o.Observe, buildStart, time.Since(buildStart))
	P := o.Ranks

	results := make([]RealReport, P)
	g := cluster.NewLocalGroupAlgo(P, nil, collectiveAlgo(o)).WithObserver(o.Observe)
	err := g.Run(func(c cluster.Comm) error {
		rep, err := runRank(c, bs, pr, o)
		if err != nil {
			return err
		}
		results[c.Rank()] = rep
		return nil
	})
	if err != nil {
		return RealReport{}, err
	}

	// Aggregate stats across ranks; energy/radii identical on all ranks.
	out := results[0]
	for _, r := range results[1:] {
		out.BornStats.Add(r.BornStats)
		out.EpolStats.Add(r.EpolStats)
		out.Sched.Add(r.Sched)
	}
	if out.BornRadii == nil {
		return out, fmt.Errorf("engine: no result produced")
	}
	return out, nil
}

// runRank is the per-rank body of the paper's Fig. 4 (steps 2–7).
func runRank(c cluster.Comm, bs *core.BornSolver, pr *Problem, o Options) (RealReport, error) {
	n := pr.Mol.N()
	P := c.Size()
	rank := c.Rank()
	pool := sched.NewPool(o.Threads)
	var rep RealReport
	po := newPhaseObs(o.Observe, rank)
	mark := time.Now()
	// lap closes one phase segment: the duration since the previous lap is
	// added to dst and — with an observer attached — recorded as a phase
	// histogram observation and a child span of the rank's root span. name
	// is always a constant, so the observability-off path builds no strings.
	lap := func(dst *time.Duration, h *obs.Histogram, name string) {
		now := time.Now()
		d := now.Sub(mark)
		*dst += d
		po.record(h, name, mark, d)
		mark = now
	}

	// Step 2: approximated integrals for this rank's q-leaf segment. The
	// flat path builds the segment's interaction list once and streams it;
	// the recursive path fuses traversal and arithmetic per q-leaf.
	useFlat := o.UseFlatKernels.enabled(true)
	sNode, sAtom := bs.NewAccumulators()
	seg := partition.ForRank(bs.NumQLeaves(), P, rank)
	switch {
	case useFlat:
		list := bs.BuildBornList(seg.Lo, seg.Hi)
		rep.BornStats = list.Stats()
		if o.Threads == 1 {
			bs.EvalBornList(list, sNode, sAtom)
		} else {
			rep.Sched = evalBornListParallel(bs, list, pool, sNode, sAtom)
		}
	case o.Threads == 1:
		for l := seg.Lo; l < seg.Hi; l++ {
			rep.BornStats.Add(bs.AccumulateQLeaf(l, sNode, sAtom))
		}
	default:
		accN := make([][]float64, pool.Workers())
		accA := make([][]float64, pool.Workers())
		statsW := make([]core.Stats, pool.Workers())
		st := pool.ParallelFor(seg.Len(), 1, func(w, lo, hi int) {
			if accN[w] == nil {
				accN[w], accA[w] = bs.NewAccumulators()
			}
			for l := lo; l < hi; l++ {
				statsW[w].Add(bs.AccumulateQLeaf(seg.Lo+l, accN[w], accA[w]))
			}
		})
		rep.Sched = st
		for w := range accN {
			if accN[w] == nil {
				continue
			}
			for i := range sNode {
				sNode[i] += accN[w][i]
			}
			for i := range sAtom {
				sAtom[i] += accA[w][i]
			}
			rep.BornStats.Add(statsW[w])
		}
	}

	lap(&rep.Phases.Born, po.born, "engine.born")

	// Step 3: gather partial integrals (MPI_Allreduce). With a non-blocking
	// transport both reductions are initiated before either is waited on,
	// so the sNode exchange overlaps the sAtom one instead of serializing
	// behind it.
	nb, hasNB := c.(cluster.NonBlocking)
	useTopo := hasNB && o.TopoCollectives.enabled(true)
	if useTopo {
		rNode := nb.IAllreduceSum(sNode)
		rAtom := nb.IAllreduceSum(sAtom)
		if err := rNode.Wait(); err != nil {
			return rep, err
		}
		if err := rAtom.Wait(); err != nil {
			return rep, err
		}
	} else {
		if err := c.AllreduceSum(sNode); err != nil {
			return rep, err
		}
		if err := c.AllreduceSum(sAtom); err != nil {
			return rep, err
		}
	}
	lap(&rep.Phases.Comm, po.comm, "engine.comm")

	// Step 4: Born radii for this rank's atom segment.
	aseg := partition.ForRank(n, P, rank)
	rTree := make([]float64, n)
	bs.PushIntegrals(sNode, sAtom, int32(aseg.Lo), int32(aseg.Hi), rTree)
	lap(&rep.Phases.Push, po.push, "engine.push")

	// Step 5: gather Born radii of the other segments — overlapped, when
	// the transport is non-blocking, with step 6's list construction: the
	// E_pol acceptance test needs only tree geometry and ε, so the skeleton
	// interaction list is built while the radii are still in flight
	// (core.BuildEpolSkeletonInto) and its one radii-dependent Stats
	// counter is completed once the solver exists (CompleteFarStats).
	counts := make([]int, P)
	for r := 0; r < P; r++ {
		counts[r] = partition.ForRank(n, P, r).Len()
	}
	rFull := make([]float64, n)
	ecfg := core.EpolConfig{Eps: o.EpolEps, Math: o.Math, Precision: o.Precision}
	lseg := partition.ForRank(bs.TA.NumLeaves(), P, rank)
	var skel *core.InteractionList
	if useTopo && useFlat {
		req := nb.IAllgatherv(rTree[aseg.Lo:aseg.Hi], counts, rFull)
		skel = core.BuildEpolSkeletonInto(new(core.InteractionList), bs.TA, core.EpolSeparation(ecfg), lseg.Lo, lseg.Hi)
		lap(&rep.Phases.Epol, po.epol, "engine.epol")
		if err := req.Wait(); err != nil {
			return rep, err
		}
	} else if err := c.Allgatherv(rTree[aseg.Lo:aseg.Hi], counts, rFull); err != nil {
		return rep, err
	}
	rep.BornRadii = bs.RadiiToOriginal(rFull)
	lap(&rep.Phases.Comm, po.comm, "engine.comm")

	// Step 6: partial energy for this rank's leaf segment.
	es := core.NewEpolSolver(bs.TA, pr.Charges, rep.BornRadii, ecfg)
	var raw float64
	switch {
	case useFlat:
		list := skel
		if list != nil {
			es.CompleteFarStats(list)
		} else {
			list = es.BuildEpolList(lseg.Lo, lseg.Hi)
		}
		rep.EpolStats.Add(list.Stats())
		if o.Threads == 1 {
			raw, _ = es.EvalEpolList(list)
		} else {
			var st sched.Stats
			raw, st = evalEpolListParallel(es, list, pool)
			rep.Sched.Add(st)
		}
	case o.Threads == 1:
		for l := lseg.Lo; l < lseg.Hi; l++ {
			e, st := es.LeafEnergy(l)
			raw += e
			rep.EpolStats.Add(st)
		}
	default:
		partial := make([]float64, pool.Workers())
		statsW := make([]core.Stats, pool.Workers())
		st := pool.ParallelFor(lseg.Len(), 1, func(w, lo, hi int) {
			for l := lo; l < hi; l++ {
				e, s := es.LeafEnergy(lseg.Lo + l)
				partial[w] += e
				statsW[w].Add(s)
			}
		})
		for w := range partial {
			raw += partial[w]
			rep.EpolStats.Add(statsW[w])
		}
		rep.Sched.Add(st)
	}

	lap(&rep.Phases.Epol, po.epol, "engine.epol")

	// Step 7: accumulate partial energies.
	ebuf := []float64{raw}
	if err := c.AllreduceSum(ebuf); err != nil {
		return rep, err
	}
	lap(&rep.Phases.Comm, po.comm, "engine.comm")
	rep.Energy = ebuf[0] * core.EnergyScale()
	po.finish("engine.rank")
	return rep, nil
}
