// Package engine assembles the treecode (internal/core), the work-division
// schemes (internal/partition), the shared-memory runtime (internal/sched)
// and the distributed substrate (internal/cluster) into the four programs
// of the paper's Table II:
//
//	OCT_CILK      — shared-memory dual-tree algorithm of [6] (cilk++ style)
//	OCT_MPI       — distributed-memory, single-threaded ranks
//	OCT_MPI+CILK  — hybrid: MPI ranks × work-stealing threads
//	Naive         — exact Eq. 2/Eq. 4 reference
//
// Every engine can run in two modes: a real run (goroutine ranks + real
// threads, measured wall time — correct on any machine) and a virtual-time
// run (the same algorithm executed once, with per-rank clocks assembled
// from deterministic work counters by internal/simtime — how the paper's
// cluster-scale figures are regenerated on hardware we do not have).
package engine

import (
	"fmt"
	"time"

	"octgb/internal/core"
	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/obs"
	"octgb/internal/surface"
)

// Kind identifies one of the octree engines (baselines live in
// internal/baselines).
type Kind int

const (
	// OctCilk is the shared-memory dual-tree engine ([6]'s algorithm).
	OctCilk Kind = iota
	// OctMPI is the distributed engine: P single-threaded ranks.
	OctMPI
	// OctMPICilk is the hybrid engine: P ranks × p threads.
	OctMPICilk
	// Naive is the exact quadratic reference.
	Naive
)

func (k Kind) String() string {
	switch k {
	case OctCilk:
		return "OCT_CILK"
	case OctMPI:
		return "OCT_MPI"
	case OctMPICilk:
		return "OCT_MPI+CILK"
	case Naive:
		return "Naive"
	}
	return "unknown"
}

// Division selects the work-division scheme (§IV-A).
type Division int

const (
	// NodeBased divides octree leaves among ranks (the paper's preferred
	// node-node scheme: error independent of P).
	NodeBased Division = iota
	// AtomBased divides atoms among ranks; boundaries can split tree
	// nodes, so the error varies with P (the ablation case).
	AtomBased
)

// Toggle is a three-state option: Auto (the zero value) resolves to the
// option's documented default, On and Off force it.
type Toggle int

const (
	// Auto selects the option's default behavior.
	Auto Toggle = iota
	// On forces the option on.
	On
	// Off forces the option off.
	Off
)

// enabled resolves the toggle against the option's default.
func (t Toggle) enabled(def bool) bool {
	switch t {
	case On:
		return true
	case Off:
		return false
	}
	return def
}

// Options configures an engine run.
type Options struct {
	// Ranks is the number of MPI processes P (OctCilk and Naive use 1).
	Ranks int
	// Threads is the thread count p inside each rank (OctMPI uses 1).
	Threads int
	// BornEps and EpolEps are the two approximation parameters
	// (paper default 0.9 / 0.9).
	BornEps, EpolEps float64
	// Math selects exact or approximate sqrt/exp.
	Math gb.MathMode
	// Precision selects the flat kernels' storage tier: core.Float64 (the
	// default, oracle-parity) or core.Float32 (float32 storage and
	// arithmetic with float64 accumulation — ~1e-6 relative error for
	// half the hot-path memory traffic; see DESIGN.md §11). Applies to
	// both phases: Prepare builds the Born solver's mirrors, EvalEpol the
	// energy solver's.
	Precision core.Precision
	// LeafSize is the octree leaf capacity (0 = default).
	LeafSize int
	// CriterionPower selects the Born well-separatedness criterion
	// (see core.BornConfig; 0 = default).
	CriterionPower int
	// Division selects node-based (default) or atom-based division.
	Division Division
	// UseFlatKernels selects the two-phase treecode in the real engines:
	// the traversal runs once as list construction and the arithmetic as
	// flat SoA kernels over the recorded interaction lists (see
	// core.InteractionList). Defaults to on (Auto); Off forces the
	// recursive fused traversal, which is kept as the reference oracle.
	// Work counters are identical either way for the distributed engines;
	// OctCilk's flat path reports the full dual traversal's NodesVisited
	// where the recursive path omits the frontier pre-expansion steps.
	// Energies and radii agree to ~1e-12 (summation order differs).
	UseFlatKernels Toggle
	// TopoCollectives selects the topology-aware collective algorithms in
	// the cluster layer (recursive-doubling allreduce, ring allgatherv,
	// binomial bcast, dissemination barrier — see cluster/collectives.go)
	// and, with them, the non-blocking overlap points in the engines: the
	// two step-3 allreduces run concurrently, the step-5 Born-radius
	// allgatherv overlaps with geometry-only E_pol list construction, and
	// the distributed-data engine evaluates its purely-local leaves while
	// ghost payloads are in flight. Defaults to on (Auto); Off falls back
	// to the star/monitor reference collectives with strictly sequential
	// compute→communicate phases — the correctness oracle. Energies agree
	// to ~1e-12 (reduction association differs) and Stats counters are
	// identical.
	TopoCollectives Toggle
	// CommTimeout is the failure-detection budget for distributed runs:
	// callers that build a transport (cmd/epolnode, the chaos harness)
	// pass it through to the cluster layer (cluster.WithCommTimeout /
	// FaultPlan.Timeout), where a peer silent past the timeout surfaces as
	// cluster.ErrRankFailed from every collective instead of hanging the
	// run. Zero (the default) disables failure detection: reads block
	// forever, the pre-hardening behavior. The engine itself never arms
	// timers — liveness is the transport's job (heartbeats run at a third
	// of this timeout, so slow compute phases do not trip it).
	CommTimeout time.Duration
	// Observe attaches an observability sink: per-rank phase latency
	// histograms (octgb_engine_phase_seconds), scheduler activity counters
	// (octgb_sched_*_total) and per-phase trace spans are recorded into it
	// during real runs. Nil (the default) disables instrumentation entirely:
	// the hot paths see only nil checks — no allocations, no atomics — and
	// produce bitwise-identical energies (pinned by TestObserveOffParity).
	Observe *obs.Observer
	// WeightedStatic enables explicit work-weighted static balancing
	// across ranks: leaf segments are cut by measured per-leaf work
	// instead of leaf count. This implements the "explicit load
	// balancing" direction of the paper's §VI future work (virtual-time
	// engines only; the count-based split is the paper's published
	// scheme).
	WeightedStatic bool
}

func (o Options) withDefaults(k Kind) Options {
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.BornEps == 0 {
		o.BornEps = 0.9
	}
	if o.EpolEps == 0 {
		o.EpolEps = 0.9
	}
	switch k {
	case OctCilk, Naive:
		o.Ranks = 1
	case OctMPI:
		o.Threads = 1
	}
	return o
}

// Validate rejects inconsistent option combinations early.
func (o Options) Validate() error {
	if o.Ranks < 0 || o.Threads < 0 {
		return fmt.Errorf("engine: negative ranks/threads")
	}
	if o.BornEps < 0 || o.EpolEps < 0 {
		return fmt.Errorf("engine: negative epsilon")
	}
	return nil
}

// Problem bundles a molecule with its sampled surface so several engines
// and configurations can be run against identical inputs.
type Problem struct {
	Mol     *molecule.Molecule
	QPts    []surface.QPoint
	Charges []float64 // original order, extracted once
}

// NewProblem samples the molecular surface and prepares shared inputs.
func NewProblem(mol *molecule.Molecule, so surface.Options) *Problem {
	return newProblem(mol, surface.Sample(mol, so))
}

// NewProblemParallel is NewProblem with the surface sampling spread over a
// work-stealing pool — identical output, useful for very large molecules
// on real multicore machines.
func NewProblemParallel(mol *molecule.Molecule, so surface.Options, workers int) *Problem {
	return newProblem(mol, surface.SampleParallel(mol, so, workers))
}

func newProblem(mol *molecule.Molecule, qpts []surface.QPoint) *Problem {
	p := &Problem{Mol: mol, QPts: qpts}
	p.Charges = make([]float64, mol.N())
	for i := range mol.Atoms {
		p.Charges[i] = mol.Atoms[i].Charge
	}
	return p
}
