package engine

import (
	"strings"
	"testing"

	"octgb/internal/core"
	"octgb/internal/obs"
)

// TestObserveOffParity pins the acceptance criterion that attaching an
// observer changes nothing numerically: the deterministic engine
// configurations produce bitwise-identical energies and Born radii with
// Observe nil and Observe set. (Multi-thread runs are excluded: worker
// scheduling already reorders their floating-point reductions run to run,
// observer or not.)
func TestObserveOffParity(t *testing.T) {
	pr := testProblem(400, 17)
	for _, tc := range []struct {
		name string
		k    Kind
		o    Options
	}{
		{"cilk-1thread", OctCilk, Options{Threads: 1}},
		{"mpi-3ranks", OctMPI, Options{Ranks: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			off, err := RunReal(pr, tc.k, tc.o)
			if err != nil {
				t.Fatal(err)
			}
			on := tc.o
			on.Observe = obs.New()
			got, err := RunReal(pr, tc.k, on)
			if err != nil {
				t.Fatal(err)
			}
			if got.Energy != off.Energy {
				t.Errorf("energy differs with observer: %v vs %v", got.Energy, off.Energy)
			}
			for i := range off.BornRadii {
				if got.BornRadii[i] != off.BornRadii[i] {
					t.Fatalf("BornRadii[%d] differs with observer: %v vs %v", i, got.BornRadii[i], off.BornRadii[i])
				}
			}
			// The observed run must actually have produced phase metrics.
			var sb strings.Builder
			if err := on.Observe.Reg.WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), "octgb_engine_phase_seconds") {
				t.Error("observed run produced no phase histograms")
			}
			if !strings.Contains(sb.String(), "octgb_sched_executed_total") {
				t.Error("observed run produced no scheduler counters")
			}
		})
	}
}

// TestObservedDistributedRecordsCollectives checks the cluster layer's
// collective instrumentation flows through the in-process group wiring.
func TestObservedDistributedRecordsCollectives(t *testing.T) {
	pr := testProblem(300, 23)
	ob := obs.New()
	if _, err := RunReal(pr, OctMPICilk, Options{Ranks: 2, Threads: 2, Observe: ob}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ob.Reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"octgb_cluster_collective_seconds",
		"octgb_cluster_collective_bytes_total",
		`kind="allreduce"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendered metrics", want)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("engine+cluster metrics render invalid exposition: %v", err)
	}
	// Spans from both layers landed in the trace ring.
	names := map[string]bool{}
	for _, sp := range ob.Trace.Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{"engine.rank", "engine.born", "cluster.allreduce"} {
		if !names[want] {
			t.Errorf("missing span %q in trace", want)
		}
	}
}

// TestLeafEvalHotPathAllocs pins the acceptance criterion that the
// leaf-evaluation hot path performs zero allocations per call — the
// instrumentation lives at phase granularity, never inside the kernels.
func TestLeafEvalHotPathAllocs(t *testing.T) {
	pr := testProblem(300, 7)
	p, err := Prepare(pr, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	es := core.NewEpolSolver(p.bs.TA, pr.Charges, p.BornRadii, core.EpolConfig{Eps: 0.9})
	list := es.BuildEpolList(0, p.bs.TA.NumLeaves())
	if len(list.Near) == 0 {
		t.Fatal("empty near list")
	}
	var sink float64
	allocs := testing.AllocsPerRun(50, func() {
		sink += es.EvalEpolNearRange(list, 0, len(list.Near))
	})
	if allocs != 0 {
		t.Errorf("leaf-eval hot path allocates %v per run, want 0", allocs)
	}
	_ = sink
}
