package engine

import (
	"testing"

	"octgb/internal/gb"
	"octgb/internal/surface"
)

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Ranks: -1}).Validate(); err == nil {
		t.Error("negative ranks accepted")
	}
	if err := (Options{Threads: -2}).Validate(); err == nil {
		t.Error("negative threads accepted")
	}
	if err := (Options{BornEps: -0.1}).Validate(); err == nil {
		t.Error("negative Born ε accepted")
	}
	if err := (Options{EpolEps: -0.1}).Validate(); err == nil {
		t.Error("negative E_pol ε accepted")
	}
	if err := (Options{Ranks: 4, Threads: 6, BornEps: 0.9, EpolEps: 0.9}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestRunRealRejectsInvalidOptions(t *testing.T) {
	pr := testProblem(100, 301)
	if _, err := RunReal(pr, OctMPI, Options{BornEps: -1}); err == nil {
		t.Error("RunReal accepted invalid options")
	}
}

func TestApproximateMathThroughEngines(t *testing.T) {
	pr := testProblem(400, 302)
	exact, err := RunReal(pr, OctMPI, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := RunReal(pr, OctMPI, Options{Ranks: 2, Math: gb.Approximate})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Energy == approx.Energy {
		t.Error("approximate math had no effect")
	}
	if e := relErr(approx.Energy, exact.Energy); e > 0.08 {
		t.Errorf("approximate math shifted energy by %v", e)
	}
}

func TestDivisionConstantsDistinct(t *testing.T) {
	if NodeBased == AtomBased {
		t.Error("division constants collide")
	}
}

func TestNewProblemParallelMatchesSerial(t *testing.T) {
	m := testProblem(500, 303).Mol
	a := NewProblem(m, surface.Default())
	b := NewProblemParallel(m, surface.Default(), 4)
	if len(a.QPts) != len(b.QPts) {
		t.Fatalf("q-point counts differ: %d vs %d", len(a.QPts), len(b.QPts))
	}
	for i := range a.QPts {
		if a.QPts[i] != b.QPts[i] {
			t.Fatalf("q-point %d differs", i)
		}
	}
}
