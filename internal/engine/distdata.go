package engine

import (
	"octgb/internal/partition"
	"octgb/internal/simtime"
)

// This file analyzes the data-distribution variant the paper lists as
// future work (§VI: "Distributing data as well as computation is also an
// interesting approach to explore"). In the published algorithms every
// rank replicates all data; in the distributed-data variant a rank holds
// only (a) the atoms of its owned leaf segment, (b) the small tree
// skeleton — node centers, radii, counts and per-node charge bins, which
// is all the far field needs — and (c) "ghost" copies of the non-owned
// leaves its near-field interactions touch. The analysis below computes
// the exact ghost sets from the real traversal, giving the true per-rank
// memory and exchange volume of that design.

// DataDistribution summarizes the distributed-data energy phase for one
// rank count.
type DataDistribution struct {
	P int
	// MaxOwnedAtoms is the largest owned atom count over ranks.
	MaxOwnedAtoms int
	// MaxGhostAtoms / AvgGhostAtoms are the per-rank ghost-copy volumes.
	MaxGhostAtoms int
	AvgGhostAtoms float64
	// SkeletonBytes is the per-rank tree-skeleton footprint (nodes + bins).
	SkeletonBytes int64
	// BytesPerRankDistributed is the worst-case per-rank memory of the
	// distributed-data design: owned + ghosts + skeleton (48 B per atom
	// payload: position, radius, charge, Born radius).
	BytesPerRankDistributed int64
	// BytesPerRankReplicated is the published design's per-rank memory.
	BytesPerRankReplicated int64
	// ExchangeWords is the total float64 volume of the ghost exchange
	// (6 words per ghost atom: position, charge, radius, Born radius).
	ExchangeWords int64
	// ExchangeCostSec is the modeled one-time exchange cost.
	ExchangeCostSec float64
}

// DistributeData computes the exact data-distribution profile of the
// energy phase for P ranks on machine m. It requires a leaf-driven model
// (OctMPI or OctMPICilk).
func (sm *SimModel) DistributeData(P int, m simtime.Machine) DataDistribution {
	if P < 1 {
		P = 1
	}
	dd := DataDistribution{P: P, BytesPerRankReplicated: sm.BytesPerRank}
	es := sm.es
	if es == nil {
		return dd
	}
	tree := es.T
	nLeaves := es.NumLeaves()
	segs := partition.Even(nLeaves, P)

	// Owner of each leaf (by leaf index).
	owner := make([]int32, nLeaves)
	for r, seg := range segs {
		for l := seg.Lo; l < seg.Hi; l++ {
			owner[l] = int32(r)
		}
	}
	// Map node index → leaf index for ghost attribution.
	leafOf := make(map[int32]int, nLeaves)
	for li, node := range tree.Leaves() {
		leafOf[node] = li
	}

	const atomBytes = 48
	const atomWords = 6
	dd.SkeletonBytes = int64(len(tree.Nodes))*64 + int64(len(tree.Nodes)*es.NumBins())*8

	var totalGhost int64
	for r, seg := range segs {
		owned := 0
		ghostLeaves := map[int32]bool{}
		for l := seg.Lo; l < seg.Hi; l++ {
			node := tree.Leaves()[l]
			owned += int(tree.Nodes[node].Count)
			for _, need := range es.NeededLeaves(l) {
				if owner[leafOf[need]] != int32(r) {
					ghostLeaves[need] = true
				}
			}
		}
		ghost := 0
		for node := range ghostLeaves {
			ghost += int(tree.Nodes[node].Count)
		}
		if owned > dd.MaxOwnedAtoms {
			dd.MaxOwnedAtoms = owned
		}
		if ghost > dd.MaxGhostAtoms {
			dd.MaxGhostAtoms = ghost
		}
		totalGhost += int64(ghost)

		bytes := int64(owned+ghost)*atomBytes + dd.SkeletonBytes
		if bytes > dd.BytesPerRankDistributed {
			dd.BytesPerRankDistributed = bytes
		}
	}
	dd.AvgGhostAtoms = float64(totalGhost) / float64(P)
	dd.ExchangeWords = totalGhost * atomWords
	// Exchange modeled as a personalized all-to-all of the ghost volume.
	rpn := ranksPerNode(P, 1, m)
	dd.ExchangeCostSec = m.CollectiveCost("allgatherv", int(dd.ExchangeWords/int64(max(P, 1))), P, rpn)
	return dd
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
