package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"octgb/internal/core"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

// jitterFrames builds a deterministic k-frame jitter stream over mol: each
// frame moves `movers` atoms by a uniform per-axis displacement of up to
// amp, compounding across frames. When cluster > 0 the movers are drawn
// from the `cluster` atoms nearest atom 0 — repeatedly jittering a spatial
// neighborhood is the streaming workload (a flexible loop, a refining
// ligand), and it is what accumulates the drift that walks drivers through
// the re-derivation band instead of jumping straight to a refresh.
func jitterFrames(mol *molecule.Molecule, k, movers, cluster int, amp float64, seed int64) []FrameDelta {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]geom.Vec3, mol.N())
	for i := range mol.Atoms {
		pos[i] = mol.Atoms[i].Pos
	}
	pick := make([]int, mol.N())
	for i := range pick {
		pick[i] = i
	}
	if cluster > 0 && cluster < len(pick) {
		c := mol.Atoms[0].Pos
		sort.Slice(pick, func(a, b int) bool {
			return mol.Atoms[pick[a]].Pos.Dist2(c) < mol.Atoms[pick[b]].Pos.Dist2(c)
		})
		pick = pick[:cluster]
	}
	frames := make([]FrameDelta, k)
	for f := range frames {
		moves := make([]AtomMove, 0, movers)
		for m := 0; m < movers; m++ {
			i := pick[rng.Intn(len(pick))]
			d := geom.Vec3{
				X: (rng.Float64()*2 - 1) * amp,
				Y: (rng.Float64()*2 - 1) * amp,
				Z: (rng.Float64()*2 - 1) * amp,
			}
			pos[i] = pos[i].Add(d)
			moves = append(moves, AtomMove{Index: i, Pos: pos[i]})
		}
		frames[f] = FrameDelta{Moves: moves}
	}
	return frames
}

// runStream replays frames through a fresh session and returns the
// per-frame energies plus the accumulated reports.
func runStream(t *testing.T, mol *molecule.Molecule, o SessionOptions, frames []FrameDelta) ([]float64, []FrameReport) {
	t.Helper()
	ss, err := NewSession(mol, o)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	energies := make([]float64, 0, len(frames)+1)
	energies = append(energies, ss.Energy())
	reports := make([]FrameReport, 0, len(frames))
	for fi, d := range frames {
		rep, err := ss.Step(d)
		if err != nil {
			t.Fatalf("Step frame %d: %v", fi, err)
		}
		energies = append(energies, rep.Energy)
		reports = append(reports, rep)
	}
	return energies, reports
}

// TestSessionIncrementalMatchesOracle is the jitter property test: a
// session with ResweepEvery=k (incremental between resweeps) must match
// the ResweepEvery=1 session (every frame fully resummed — the
// from-scratch oracle over the same deterministically evolving structure)
// to 1e-12 relative on every frame, on both precision tiers, across
// displacement regimes that exercise the pure-dirty path, driver
// re-derivation, and the forced-resweep boundary.
func TestSessionIncrementalMatchesOracle(t *testing.T) {
	mol := molecule.GenerateProtein("stream", 700, 99)
	base := SessionOptions{
		Surf: surface.Options{SubdivLevel: 0, Degree: 1, RadiusScale: 1.0},
		Eval: Options{Threads: 1},
	}
	// Per-axis hops stay under (1-rederiveFraction)·MinSlack/√3 ≈ 0.07, so
	// no single frame can jump a driver from inside its re-derivation
	// budget straight past the refresh threshold; compounded cluster drift
	// then reaches the re-derivation band on its own.
	regimes := []struct {
		name    string
		movers  int
		cluster int
		amp     float64
	}{
		{"sub-slack", 7, 16, 0.01}, // drift stays within the budget: pure dirty path
		{"re-derive", 7, 16, 0.06}, // compounds past half-margin: driver re-derivations
		{"mixed", 20, 48, 0.05},    // broad dirty regions, occasional re-derivation
	}
	for _, prec := range []core.Precision{core.Float64, core.Float32} {
		for _, rg := range regimes {
			rg := rg
			t.Run(prec.String()+"/"+rg.name, func(t *testing.T) {
				o := base
				o.Eval.Precision = prec
				frames := jitterFrames(mol, 24, rg.movers, rg.cluster, rg.amp, 7)

				oracle := o
				oracle.ResweepEvery = 1
				incr := o
				incr.ResweepEvery = 8 // frames 8, 16, 24 hit the forced-resweep boundary

				want, _ := runStream(t, mol, oracle, frames)
				got, reports := runStream(t, mol, incr, frames)
				for f := range want {
					rel := math.Abs(got[f]-want[f]) / math.Abs(want[f])
					if rel > 1e-12 {
						t.Fatalf("frame %d: incremental %.17g vs oracle %.17g (rel %.3g > 1e-12)", f, got[f], want[f], rel)
					}
				}
				rederived, refreshed := 0, 0
				for _, rep := range reports {
					rederived += rep.Rederived
					if rep.Refreshed {
						refreshed++
					}
				}
				if rg.name == "re-derive" && rederived == 0 {
					t.Fatalf("re-derive regime never re-derived a driver; slack breach path untested")
				}
				if rg.name == "sub-slack" && (rederived != 0 || refreshed != 0) {
					t.Fatalf("sub-slack regime re-derived %d / refreshed %d; pure dirty path untested", rederived, refreshed)
				}
				for _, rep := range reports {
					if rep.Frame%8 == 0 && !rep.Refreshed && !rep.Resweep {
						t.Fatalf("frame %d should have taken the forced resweep", rep.Frame)
					}
				}
			})
		}
	}
}

// TestSessionFloat32TracksFloat64 pins the reduced tier against the f64
// session on the same stream: the storage tier changes kernel arithmetic,
// not the algorithm, so energies must agree to the tier's tolerance.
// RadiusTolerance is disabled so the comparison isolates tier arithmetic:
// with the gate on, push events are decided on each tier's own radii and
// can fire on different frames, adding a (bounded, tolerance-sized) offset
// that is not the tier's doing.
func TestSessionFloat32TracksFloat64(t *testing.T) {
	mol := molecule.GenerateProtein("tier", 600, 31)
	o := SessionOptions{
		Surf:            surface.Options{SubdivLevel: 0, Degree: 1, RadiusScale: 1.0},
		Eval:            Options{Threads: 1},
		ResweepEvery:    8,
		RadiusTolerance: -1,
	}
	frames := jitterFrames(mol, 16, 9, 24, 0.05, 13)

	o64 := o
	o64.Eval.Precision = core.Float64
	e64, _ := runStream(t, mol, o64, frames)
	o32 := o
	o32.Eval.Precision = core.Float32
	e32, _ := runStream(t, mol, o32, frames)
	for f := range e64 {
		rel := math.Abs(e32[f]-e64[f]) / math.Abs(e64[f])
		if rel > 5e-6 {
			t.Fatalf("frame %d: f32 %.12g vs f64 %.12g (rel %.3g > 5e-6)", f, e32[f], e64[f], rel)
		}
	}
}

// TestSessionRadiusToleranceDrift bounds the accuracy cost of the radius
// staleness gate: a default-tolerance session against a zero-tolerance
// session on the same stream. The gate holds every energy-solver radius
// within RadiusTolerance (relative) of exact, so the energy offset is a
// bounded multiple of it — orders of magnitude below the treecode
// approximation error — and it must never accumulate with frame count.
func TestSessionRadiusToleranceDrift(t *testing.T) {
	mol := molecule.GenerateProtein("rtol", 600, 57)
	o := SessionOptions{
		Surf:         surface.Options{SubdivLevel: 0, Degree: 1, RadiusScale: 1.0},
		Eval:         Options{Threads: 1},
		ResweepEvery: 8,
	}
	frames := jitterFrames(mol, 24, 9, 24, 0.04, 21)

	gated := o // RadiusTolerance 0 -> default 1e-6
	exact := o
	exact.RadiusTolerance = -1
	eg, reps := runStream(t, mol, gated, frames)
	ee, _ := runStream(t, mol, exact, frames)
	for f := range ee {
		rel := math.Abs(eg[f]-ee[f]) / math.Abs(ee[f])
		if rel > 1e-4 {
			t.Fatalf("frame %d: gated %.12g vs exact %.12g (rel %.3g > 1e-4)", f, eg[f], ee[f], rel)
		}
	}
	// The gate must actually suppress pushes, or it is not being tested.
	for _, rep := range reps {
		if rep.MovedAtoms > 0 && !rep.Resweep && !rep.Refreshed && rep.PushedRadii >= mol.N() {
			t.Fatalf("frame %d pushed every radius; tolerance gate inert", rep.Frame)
		}
	}
}

// TestSessionRefreshPath forces displacements large enough to breach an
// internal node's slack margin, which must take the structural-refresh
// path and still match the oracle session (refresh is geometry driven, so
// both sessions refresh on the same frame).
func TestSessionRefreshPath(t *testing.T) {
	mol := molecule.GenerateProtein("refresh", 500, 77)
	o := SessionOptions{
		Surf:        surface.Options{SubdivLevel: 0, Degree: 1, RadiusScale: 1.0},
		Eval:        Options{Threads: 1},
		SlackFactor: 0.01,
		MinSlack:    0.05, // tight margins so modest jitter forces a refresh
	}
	frames := jitterFrames(mol, 10, 25, 0, 0.5, 3)

	oracle := o
	oracle.ResweepEvery = 1
	incr := o
	incr.ResweepEvery = 4

	want, wantReps := runStream(t, mol, oracle, frames)
	got, gotReps := runStream(t, mol, incr, frames)
	refreshed := 0
	for f := range wantReps {
		if wantReps[f].Refreshed != gotReps[f].Refreshed {
			t.Fatalf("frame %d: refresh divergence (oracle %v, incremental %v) — refresh must be geometry driven", f+1, wantReps[f].Refreshed, gotReps[f].Refreshed)
		}
		if gotReps[f].Refreshed {
			refreshed++
		}
	}
	if refreshed == 0 {
		t.Fatalf("stream never refreshed; structural path untested")
	}
	for f := range want {
		rel := math.Abs(got[f]-want[f]) / math.Abs(want[f])
		if rel > 1e-12 {
			t.Fatalf("frame %d: incremental %.17g vs oracle %.17g (rel %.3g > 1e-12)", f, got[f], want[f], rel)
		}
	}
}

// TestSessionAgreesWithPrepared sanity-checks the session's absolute
// energies against the stateless pipeline. The two legitimately differ at
// treecode-approximation level (the session's slack-inflated lists trade
// far entries for exact near ones, and its surface follows moved atoms
// rigidly instead of being re-sampled), so the tolerance is loose; the
// tight 1e-12 contract lives in the oracle tests above.
func TestSessionAgreesWithPrepared(t *testing.T) {
	mol := molecule.GenerateProtein("sanity", 400, 11)
	so := surface.Options{SubdivLevel: 0, Degree: 1, RadiusScale: 1.0}
	ss, err := NewSession(mol, SessionOptions{Surf: so, Eval: Options{Threads: 1}})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	p, err := Prepare(NewProblem(mol, so), Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	rep, err := p.EvalEpol(Options{Threads: 1})
	if err != nil {
		t.Fatalf("EvalEpol: %v", err)
	}
	rel := math.Abs(ss.Energy()-rep.Energy) / math.Abs(rep.Energy)
	if rel > 5e-2 {
		t.Fatalf("session energy %.9g vs prepared %.9g (rel %.3g > 5e-2)", ss.Energy(), rep.Energy, rel)
	}
}

// TestSessionRejectsBadMove pins the validation contract: an out-of-range
// index fails the whole frame and leaves the session untouched.
func TestSessionRejectsBadMove(t *testing.T) {
	mol := molecule.GenerateProtein("bad", 200, 5)
	ss, err := NewSession(mol, SessionOptions{
		Surf: surface.Options{SubdivLevel: 0, Degree: 1, RadiusScale: 1.0},
		Eval: Options{Threads: 1},
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	e0, f0 := ss.Energy(), ss.Frame()
	if _, err := ss.Step(FrameDelta{Moves: []AtomMove{{Index: mol.N(), Pos: geom.Vec3{}}}}); err == nil {
		t.Fatalf("Step accepted an out-of-range move")
	}
	if ss.Energy() != e0 || ss.Frame() != f0 {
		t.Fatalf("failed Step mutated the session")
	}
}
