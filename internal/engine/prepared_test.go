package engine

import (
	"math"
	"sync"
	"testing"

	"octgb/internal/molecule"
	"octgb/internal/surface"
)

// TestPreparedMatchesCold is the golden test of the Prepare/EvalEpol split:
// re-evaluating a cached Prepared must reproduce the cold path to 1e-12
// (in fact bitwise — both paths execute the same code), for both kernel
// paths and several ε_E settings.
func TestPreparedMatchesCold(t *testing.T) {
	mol := molecule.GenerateProtein("golden", 900, 21)
	for _, flat := range []Toggle{Auto, Off} {
		for _, epolEps := range []float64{0.9, 0.5} {
			o := Options{Threads: 2, EpolEps: epolEps, UseFlatKernels: flat}

			cold, err := RunReal(NewProblem(mol, surface.Default()), OctCilk, o)
			if err != nil {
				t.Fatalf("cold run: %v", err)
			}

			p, err := Prepare(NewProblem(mol, surface.Default()), o)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			warm, err := p.EvalEpol(o)
			if err != nil {
				t.Fatalf("EvalEpol: %v", err)
			}

			if rel := math.Abs(warm.Energy-cold.Energy) / math.Abs(cold.Energy); rel > 1e-12 {
				t.Fatalf("flat=%v ε_E=%g: cached energy %.15g vs cold %.15g (rel %.2g > 1e-12)",
					flat, epolEps, warm.Energy, cold.Energy, rel)
			}
			for i := range cold.BornRadii {
				if math.Abs(warm.BornRadii[i]-cold.BornRadii[i]) > 1e-12*cold.BornRadii[i] {
					t.Fatalf("Born radius %d differs: %g vs %g", i, warm.BornRadii[i], cold.BornRadii[i])
				}
			}
			if warm.BornStats != cold.BornStats || warm.EpolStats != cold.EpolStats {
				t.Fatalf("work counters differ between cached and cold paths")
			}
		}
	}
}

// TestPreparedReEvalStable: evaluating the same Prepared repeatedly and
// concurrently yields the same energy — the property that makes it safe
// to share one cache entry across requests. With one thread the result is
// bitwise stable; with a work-stealing pool the reduction order varies
// run to run, so agreement there is last-ulp (1e-12 relative).
func TestPreparedReEvalStable(t *testing.T) {
	mol := molecule.GenerateProtein("stable", 600, 4)
	p, err := Prepare(NewProblem(mol, surface.Default()), Options{Threads: 2})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	first, err := p.EvalEpol(Options{Threads: 2})
	if err != nil {
		t.Fatalf("EvalEpol: %v", err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	energies := make([]float64, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rep, err := p.EvalEpol(Options{Threads: 2})
			energies[g], errs[g] = rep.Energy, err
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("concurrent EvalEpol %d: %v", g, errs[g])
		}
		if rel := math.Abs(energies[g]-first.Energy) / math.Abs(first.Energy); rel > 1e-12 {
			t.Fatalf("concurrent EvalEpol %d: %.17g vs %.17g (rel %.2g)", g, energies[g], first.Energy, rel)
		}
	}

	// Single-threaded evaluation has a fixed reduction order: bitwise.
	p1, err := Prepare(NewProblem(mol, surface.Default()), Options{Threads: 1})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	a, err := p1.EvalEpol(Options{Threads: 1})
	if err != nil {
		t.Fatalf("EvalEpol: %v", err)
	}
	b, err := p1.EvalEpol(Options{Threads: 1})
	if err != nil {
		t.Fatalf("EvalEpol: %v", err)
	}
	if a.Energy != b.Energy {
		t.Fatalf("single-threaded re-eval not bitwise stable: %.17g vs %.17g", a.Energy, b.Energy)
	}
}

// TestPreparedEpsSweep: one Prepare amortizes across evaluations with
// different ε_E — each must match its own cold run.
func TestPreparedEpsSweep(t *testing.T) {
	mol := molecule.GenerateProtein("sweep", 500, 8)
	p, err := Prepare(NewProblem(mol, surface.Default()), Options{Threads: 1, BornEps: 0.9})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	for _, eps := range []float64{0.9, 0.7, 0.3} {
		warm, err := p.EvalEpol(Options{Threads: 1, EpolEps: eps})
		if err != nil {
			t.Fatalf("EvalEpol ε=%g: %v", eps, err)
		}
		cold, err := RunReal(NewProblem(mol, surface.Default()), OctCilk, Options{Threads: 1, BornEps: 0.9, EpolEps: eps})
		if err != nil {
			t.Fatalf("cold ε=%g: %v", eps, err)
		}
		if rel := math.Abs(warm.Energy-cold.Energy) / math.Abs(cold.Energy); rel > 1e-12 {
			t.Fatalf("ε=%g: cached %.15g vs cold %.15g", eps, warm.Energy, cold.Energy)
		}
	}
}

// TestNewProblemFromSurface: a problem assembled from an external point set
// equals one sampled internally from the same molecule/options.
func TestNewProblemFromSurface(t *testing.T) {
	mol := molecule.GenerateProtein("ext", 400, 15)
	qpts := surface.Sample(mol, surface.Default())
	a := NewProblem(mol, surface.Default())
	b := NewProblemFromSurface(mol, qpts)
	if len(a.QPts) != len(b.QPts) || len(a.Charges) != len(b.Charges) {
		t.Fatalf("problem shapes differ")
	}
	ra, err := RunReal(a, OctCilk, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunReal(b, OctCilk, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Energy != rb.Energy {
		t.Fatalf("energy differs: %.15g vs %.15g", ra.Energy, rb.Energy)
	}
}

// TestPreparedMemoryBytes: the cache charge estimate is positive and grows
// with the molecule.
func TestPreparedMemoryBytes(t *testing.T) {
	small, err := Prepare(NewProblem(molecule.GenerateProtein("s", 200, 1), surface.Default()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Prepare(NewProblem(molecule.GenerateProtein("l", 2000, 1), surface.Default()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if small.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes = %d, want > 0", small.MemoryBytes())
	}
	if large.MemoryBytes() <= small.MemoryBytes() {
		t.Fatalf("MemoryBytes does not grow with problem size: %d vs %d", large.MemoryBytes(), small.MemoryBytes())
	}
}
