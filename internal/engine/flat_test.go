package engine

import (
	"fmt"
	"testing"

	"octgb/internal/gb"
)

// The engine-level flat-vs-recursive equivalence suite: every real engine
// must produce the same energies, radii and treecode work counters whether
// it runs the default two-phase interaction-list path or the recursive
// fused traversals (UseFlatKernels Off). OctCilk's NodesVisited is exempt:
// its recursive path counts from the pre-expanded dual frontier, the flat
// path from the root (see Options.UseFlatKernels).

func runBoth(t *testing.T, pr *Problem, k Kind, o Options) (flat, rec RealReport) {
	t.Helper()
	o.UseFlatKernels = On
	flat, err := RunReal(pr, k, o)
	if err != nil {
		t.Fatalf("flat run: %v", err)
	}
	o.UseFlatKernels = Off
	rec, err = RunReal(pr, k, o)
	if err != nil {
		t.Fatalf("recursive run: %v", err)
	}
	return flat, rec
}

func TestFlatMatchesRecursiveAcrossEngines(t *testing.T) {
	pr := testProblem(900, 71)
	cases := []struct {
		kind Kind
		o    Options
	}{
		{OctCilk, Options{Threads: 1}},
		{OctCilk, Options{Threads: 4}},
		{OctMPI, Options{Ranks: 3}},
		{OctMPICilk, Options{Ranks: 2, Threads: 3}},
		{OctMPICilk, Options{Ranks: 2, Threads: 3, Math: gb.Approximate}},
		{OctMPICilk, Options{Ranks: 2, Threads: 2, Division: AtomBased}},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%v/P=%d/p=%d", c.kind, c.o.Ranks, c.o.Threads), func(t *testing.T) {
			flat, rec := runBoth(t, pr, c.kind, c.o)
			if e := relErr(flat.Energy, rec.Energy); e > 1e-12 {
				t.Errorf("energy: flat %v vs recursive %v (rel %v)", flat.Energy, rec.Energy, e)
			}
			for i := range rec.BornRadii {
				if e := relErr(flat.BornRadii[i], rec.BornRadii[i]); e > 1e-12 {
					t.Fatalf("radius[%d]: flat %v vs recursive %v", i, flat.BornRadii[i], rec.BornRadii[i])
				}
			}
			if flat.BornStats.FarEval != rec.BornStats.FarEval || flat.BornStats.NearPairs != rec.BornStats.NearPairs {
				t.Errorf("Born counters: flat %+v vs recursive %+v", flat.BornStats, rec.BornStats)
			}
			if flat.EpolStats.FarEval != rec.EpolStats.FarEval || flat.EpolStats.NearPairs != rec.EpolStats.NearPairs {
				t.Errorf("Epol counters: flat %+v vs recursive %+v", flat.EpolStats, rec.EpolStats)
			}
			if c.kind != OctCilk {
				// Distributed engines mirror the recursion exactly,
				// NodesVisited included.
				if flat.BornStats != rec.BornStats || flat.EpolStats != rec.EpolStats {
					t.Errorf("stats: flat %+v/%+v vs recursive %+v/%+v",
						flat.BornStats, flat.EpolStats, rec.BornStats, rec.EpolStats)
				}
			}
		})
	}
}

// TestFlatDistributedDataEnergy: the NaN-poisoned distributed-data engine
// must agree between the two paths — the flat kernels respect the same
// residency contract as the recursion.
func TestFlatDistributedDataEnergy(t *testing.T) {
	pr := testProblem(600, 72)
	var o Options
	o.UseFlatKernels = On
	flat, err := RunDistributedDataEnergy(pr, 3, o)
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	o.UseFlatKernels = Off
	rec, err := RunDistributedDataEnergy(pr, 3, o)
	if err != nil {
		t.Fatalf("recursive: %v", err)
	}
	if e := relErr(flat, rec); e > 1e-12 {
		t.Errorf("distributed-data energy: flat %v vs recursive %v (rel %v)", flat, rec, e)
	}
}

// TestToggleResolution pins the Toggle semantics: Auto means on.
func TestToggleResolution(t *testing.T) {
	if !Auto.enabled(true) || Auto.enabled(false) {
		t.Error("Auto must resolve to the default")
	}
	if !On.enabled(false) || Off.enabled(true) {
		t.Error("On/Off must override the default")
	}
}
