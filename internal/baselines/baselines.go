// Package baselines builds the five comparison programs of the paper's
// Table II out of the library's substrates (internal/gbmodels +
// internal/nblist + the cluster/time models):
//
//	Amber 12   — HCT radii, cutoff-free GB (Amber's implicit-solvent
//	             default), MPI atom division, sander-style generic kernels
//	Gromacs    — HCT radii, cutoff-free GB, MPI, fast SIMD-style kernels
//	NAMD 2.9   — OBC radii, cutoff-free GB, MPI, Charm++ framework overhead
//	Tinker 6.0 — STILL radii, O(N²), shared-memory only, quadratic memory
//	GBr⁶       — volume-r⁶ radii, O(N²), serial, quadratic memory
//
// The stand-ins genuinely execute the pairwise GB computation these
// packages perform (radii + energy), so their energies and work counters
// are real; only their identification with the closed-source originals is
// a modeling step, with per-package kernel/framework factors documented on
// each Spec. Memory limits reproduce the out-of-memory behaviour the paper
// reports for Tinker (>12k atoms) and GBr⁶ (>13k atoms).
package baselines

import (
	"fmt"

	"octgb/internal/gb"
	"octgb/internal/gbmodels"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
)

// Package identifies a modeled comparison program.
type Package int

const (
	AmberLike Package = iota
	GromacsLike
	NAMDLike
	TinkerLike
	GBr6Like
)

// Spec describes one modeled package.
type Spec struct {
	Name     string
	Model    gbmodels.Model
	Cutoff   float64 // descreening/energy cutoff (0 = none)
	Parallel string  // "MPI", "OpenMP", "serial"
	// MaxAtoms is the size beyond which the real package ran out of
	// memory in the paper's experiments (0 = no limit observed).
	MaxAtoms int
	// MaxRanks caps MPI width (Amber's 256-core limit, paper footnote 6).
	MaxRanks int
	// KernelFactor scales per-pair cost relative to the reference HCT/OBC
	// kernel costs in simtime.OpCosts: Gromacs' SIMD kernels run the same
	// arithmetic substantially faster; Tinker's generic loops slower.
	KernelFactor float64
	// FrameworkFactor models per-step runtime-system overhead (NAMD's
	// patch/Charm++ machinery, measured in the paper by differencing two
	// runs, still leaves per-step overhead).
	FrameworkFactor float64
	// SharedOnly packages cannot use more than one rank.
	SharedOnly bool
	// Serial packages use exactly one core.
	Serial bool
	// QuadraticMemory packages hold dense per-pair state (the reason the
	// paper sees Tinker and GBr⁶ run out of memory); the others stream
	// pairs with O(N) memory.
	QuadraticMemory bool
}

// Spec returns the package description.
func (p Package) Spec() Spec {
	switch p {
	case AmberLike:
		// Amber GB (sander) evaluates the full all-pairs GB by default
		// (cut=∞ for implicit solvent); the kernel/framework factors model
		// sander's generic per-pair force-field machinery (~4× the bare
		// arithmetic), calibrated so GBr⁶'s serial analytical kernel lands
		// near parity with Amber on 12 cores as in the paper's Figure 8b.
		return Spec{Name: "Amber 12 (modeled)", Model: gbmodels.HCT, Cutoff: 0,
			Parallel: "MPI", MaxRanks: 256, KernelFactor: 2.0, FrameworkFactor: 2.0}
	case GromacsLike:
		// Gromacs' hand-tuned kernels run the same all-pairs arithmetic
		// several times faster than sander.
		return Spec{Name: "Gromacs 4.5.3 (modeled)", Model: gbmodels.HCT, Cutoff: 0,
			Parallel: "MPI", KernelFactor: 0.7, FrameworkFactor: 1.0}
	case NAMDLike:
		// OBC pairs cost more than HCT, and the Charm++ patch framework
		// adds per-step overhead — NAMD trails Amber as in Figure 8.
		return Spec{Name: "NAMD 2.9 (modeled)", Model: gbmodels.OBC, Cutoff: 0,
			Parallel: "MPI", KernelFactor: 2.0, FrameworkFactor: 2.0}
	case TinkerLike:
		return Spec{Name: "Tinker 6.0 (modeled)", Model: gbmodels.STILL, Cutoff: 0,
			Parallel: "OpenMP", MaxAtoms: 12000, KernelFactor: 2.2, FrameworkFactor: 1.0,
			SharedOnly: true, QuadraticMemory: true}
	case GBr6Like:
		// A tight analytical kernel (no transcendental in the radii
		// phase): serial GBr⁶ lands near 12-core Amber, per Figure 8b.
		return Spec{Name: "GBr6 (modeled)", Model: gbmodels.VolR6, Cutoff: 0,
			Parallel: "serial", MaxAtoms: 13000, KernelFactor: 0.49, FrameworkFactor: 1.0,
			SharedOnly: true, Serial: true, QuadraticMemory: true}
	}
	return Spec{Name: "unknown"}
}

func (p Package) String() string { return p.Spec().Name }

// All lists every modeled package in Table II order.
func All() []Package {
	return []Package{GromacsLike, NAMDLike, AmberLike, TinkerLike, GBr6Like}
}

// ErrOutOfMemory reproduces the failures the paper observed for large
// molecules.
type ErrOutOfMemory struct {
	Pkg   string
	Atoms int
	Limit int
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("%s: out of memory for %d atoms (observed limit ≈%d)", e.Pkg, e.Atoms, e.Limit)
}

// Report is the executed result of one baseline on one molecule.
type Report struct {
	Spec        Spec
	Energy      float64
	R           []float64
	RadiiPairs  int64
	EnergyPairs int64
	NblistTests int64
	// MemoryBytes is the modeled per-rank working set: the nonbonded
	// lists for cutoff packages, dense pair storage for the quadratic
	// ones.
	MemoryBytes int64
}

// Run executes the baseline's GB computation on mol. cutoffOverride > 0
// replaces the package's default cutoff (the paper does this for Gromacs
// and NAMD on the CMV shell). It returns ErrOutOfMemory exactly where the
// paper reports the real package failing.
func Run(p Package, mol *molecule.Molecule, mode gb.MathMode, cutoffOverride float64) (*Report, error) {
	spec := p.Spec()
	if cutoffOverride > 0 {
		spec.Cutoff = cutoffOverride
	}
	n := mol.N()
	if spec.MaxAtoms > 0 && n > spec.MaxAtoms {
		return nil, &ErrOutOfMemory{Pkg: spec.Name, Atoms: n, Limit: spec.MaxAtoms}
	}

	rres := gbmodels.Radii(spec.Model, mol, gbmodels.Params{Cutoff: spec.Cutoff})
	energy, epairs := gbmodels.EpolCutoff(mol, rres.R, spec.Cutoff, mode)

	rep := &Report{
		Spec:        spec,
		Energy:      energy,
		R:           rres.R,
		RadiiPairs:  rres.PairsEvaluated,
		EnergyPairs: epairs,
		NblistTests: rres.NblistTests,
	}
	switch {
	case spec.QuadraticMemory:
		// Dense per-pair state — the OOM mechanism.
		rep.MemoryBytes = int64(n)*int64(n)*8 + int64(n)*64
	case spec.Cutoff > 0:
		// Neighbour-list storage: one int32 per stored (ordered) pair.
		rep.MemoryBytes = rres.PairsEvaluated*4 + int64(n)*64
	default:
		// Streaming all-pairs evaluation: O(N) memory.
		rep.MemoryBytes = int64(n) * 128
	}
	return rep, nil
}

// RunLarge is Run for very large molecules: the quadratic baselines'
// all-pairs evaluation is infeasible to execute literally (the paper's CMV
// shell implies 2.6·10¹¹ HCT pairs), so the energy is evaluated with a
// 25 Å cutoff while the work counters are charged for the full all-pairs
// computation the real package performs. This substitution — execute
// truncated, account untruncated — is recorded in DESIGN.md; for molecules
// under the threshold it falls back to the exact Run.
func RunLarge(p Package, mol *molecule.Molecule, mode gb.MathMode) (*Report, error) {
	n := mol.N()
	if n <= LargeThreshold {
		return Run(p, mol, mode, 0)
	}
	spec := p.Spec()
	if spec.MaxAtoms > 0 && n > spec.MaxAtoms {
		return nil, &ErrOutOfMemory{Pkg: spec.Name, Atoms: n, Limit: spec.MaxAtoms}
	}
	rep, err := Run(p, mol, mode, 25)
	if err != nil {
		return nil, err
	}
	if spec.Cutoff == 0 {
		// Charge the model for the all-pairs work the real package does.
		rep.RadiiPairs = int64(n) * int64(n-1)
		rep.EnergyPairs = int64(n) * int64(n-1) / 2
		rep.NblistTests = 0
		rep.Spec = spec
		if spec.QuadraticMemory {
			rep.MemoryBytes = int64(n)*int64(n)*8 + int64(n)*64
		} else {
			rep.MemoryBytes = int64(n) * 128
		}
	}
	return rep, nil
}

// LargeThreshold is the atom count above which RunLarge switches to the
// truncated-execution / full-accounting mode. Exposed as a variable so
// tests can exercise the large path cheaply.
var LargeThreshold = 100000

// Timing is the virtual-time result of a baseline run.
type Timing struct {
	TotalSec   float64
	ComputeSec float64
	CommSec    float64
	Cores      int
	MemPenalty float64
}

// pairCost selects the per-pair kernel cost for a model.
func pairCost(m gbmodels.Model, oc simtime.OpCosts) float64 {
	switch m {
	case gbmodels.OBC:
		return oc.PairOBCSec
	case gbmodels.STILL:
		return oc.PairSTILLSec
	case gbmodels.VolR6:
		return oc.PairVolR6Sec
	default:
		return oc.PairHCTSec
	}
}

// SimTime assembles the virtual-time run of a baseline for P ranks ×
// threads on machine m (shared-only packages clamp P to 1; serial ones use
// one core).
func (r *Report) SimTime(P, threads int, m simtime.Machine, oc simtime.OpCosts, mode gb.MathMode) Timing {
	spec := r.Spec
	if spec.Serial {
		P, threads = 1, 1
	}
	if spec.SharedOnly {
		P = 1
	}
	if spec.MaxRanks > 0 && P > spec.MaxRanks {
		P = spec.MaxRanks
	}
	if P < 1 {
		P = 1
	}
	if threads < 1 {
		threads = 1
	}
	cores := float64(P * threads)

	rpn := m.CoresPerNode / threads
	if rpn < 1 {
		rpn = 1
	}
	if P < rpn {
		rpn = P
	}
	pen := m.MemoryPenalty(r.MemoryBytes, rpn)

	pc := pairCost(spec.Model, oc) * spec.KernelFactor * spec.FrameworkFactor
	ec := oc.EpolNearPairSec * spec.KernelFactor * spec.FrameworkFactor
	if mode == gb.Approximate {
		pc /= simtime.ApproxMathFactor
		ec /= simtime.ApproxMathFactor
	}

	compute := (float64(r.RadiiPairs)*pc +
		float64(r.EnergyPairs)*ec +
		float64(r.NblistTests)*oc.NblistStepSec) * pen / cores

	var comm float64
	if P > 1 {
		n := len(r.R)
		comm = m.CollectiveCost("allreduce", n, P, rpn) + // gather Born radii
			m.CollectiveCost("allreduce", 1, P, rpn) // reduce energy
	}
	return Timing{
		TotalSec:   compute + comm,
		ComputeSec: compute,
		CommSec:    comm,
		Cores:      int(cores),
		MemPenalty: pen,
	}
}
