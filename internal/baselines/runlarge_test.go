package baselines

import (
	"errors"
	"math"
	"testing"

	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
)

func TestRunLargeSmallMoleculeIdenticalToRun(t *testing.T) {
	m := molecule.GenerateProtein("rl", 700, 81)
	a, err := Run(AmberLike, m, gb.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLarge(AmberLike, m, gb.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy || a.RadiiPairs != b.RadiiPairs {
		t.Errorf("RunLarge diverged below threshold: %v/%d vs %v/%d",
			a.Energy, a.RadiiPairs, b.Energy, b.RadiiPairs)
	}
}

func TestRunLargeChargesAllPairsWork(t *testing.T) {
	// Above the threshold the execution is truncated but the accounting
	// must reflect the all-pairs work of the real package. The threshold
	// is lowered so the test exercises the large path cheaply.
	defer func(old int) { LargeThreshold = old }(LargeThreshold)
	LargeThreshold = 4000
	m := molecule.GenerateCapsid("rlbig", 6000, 10, 82)
	rep, err := RunLarge(AmberLike, m, gb.Exact)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(m.N())
	if rep.RadiiPairs != n*(n-1) {
		t.Errorf("radii pairs %d, want all-ordered-pairs %d", rep.RadiiPairs, n*(n-1))
	}
	if rep.EnergyPairs != n*(n-1)/2 {
		t.Errorf("energy pairs %d, want %d", rep.EnergyPairs, n*(n-1)/2)
	}
	if rep.Energy >= 0 {
		t.Errorf("energy %v", rep.Energy)
	}
	// Streaming memory, not quadratic.
	if rep.MemoryBytes > n*1024 {
		t.Errorf("Amber memory %d not O(N)", rep.MemoryBytes)
	}
}

func TestRunLargeStillOOMs(t *testing.T) {
	m := molecule.GenerateCapsid("rloom", 14000, 20, 83)
	var oom *ErrOutOfMemory
	if _, err := RunLarge(TinkerLike, m, gb.Exact); !errors.As(err, &oom) {
		t.Error("Tinker did not OOM via RunLarge")
	}
}

func TestFig8bEndpointCalibration(t *testing.T) {
	// The calibration targets from the paper's Figure 8b at a mid-size
	// molecule: Gromacs ≈2.7–6.2× Amber, Tinker ≈2.1×, GBr⁶ ≈1.14×,
	// NAMD ≤1.1×. Allow generous bands — shape, not decimals.
	m := molecule.GenerateProtein("cal", 3000, 84)
	mach := simtime.Lonestar4()
	oc := simtime.DefaultOpCosts()

	timeOf := func(p Package, ranks, threads int) float64 {
		rep, err := Run(p, m, gb.Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rep.SimTime(ranks, threads, mach, oc, gb.Exact).TotalSec
	}
	amber := timeOf(AmberLike, 12, 1)

	if s := amber / timeOf(GromacsLike, 12, 1); s < 2 || s > 8 {
		t.Errorf("Gromacs speedup %v outside [2,8]", s)
	}
	if s := amber / timeOf(TinkerLike, 1, 12); s < 1.2 || s > 3.5 {
		t.Errorf("Tinker speedup %v outside [1.2,3.5]", s)
	}
	if s := amber / timeOf(GBr6Like, 1, 1); s < 0.7 || s > 1.8 {
		t.Errorf("GBr6 speedup %v outside [0.7,1.8]", s)
	}
	if s := amber / timeOf(NAMDLike, 12, 1); s < 0.5 || s > 1.2 {
		t.Errorf("NAMD speedup %v outside [0.5,1.2]", s)
	}
}

func TestAllPackagesEnergiesFinite(t *testing.T) {
	m := molecule.GenerateCapsid("fin", 2000, 8, 85)
	for _, p := range All() {
		rep, err := Run(p, m, gb.Exact, 0)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if math.IsNaN(rep.Energy) || math.IsInf(rep.Energy, 0) {
			t.Errorf("%v: energy %v", p, rep.Energy)
		}
		for i, rad := range rep.R {
			if math.IsNaN(rad) || rad <= 0 {
				t.Fatalf("%v: radius %d = %v", p, i, rad)
			}
		}
	}
}
