package baselines

import (
	"errors"
	"math"
	"testing"

	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

func TestSpecsSane(t *testing.T) {
	for _, p := range All() {
		s := p.Spec()
		if s.Name == "" || s.Name == "unknown" {
			t.Errorf("package %d has no spec", p)
		}
		if s.KernelFactor <= 0 || s.FrameworkFactor <= 0 {
			t.Errorf("%s: non-positive factors", s.Name)
		}
	}
	if len(All()) != 5 {
		t.Errorf("expected 5 baselines, got %d", len(All()))
	}
}

func TestAllBaselinesProduceNegativeEnergy(t *testing.T) {
	m := molecule.GenerateProtein("b", 900, 61)
	for _, p := range All() {
		rep, err := Run(p, m, gb.Exact, 0)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if rep.Energy >= 0 {
			t.Errorf("%v: E_pol = %v", p, rep.Energy)
		}
		if rep.RadiiPairs == 0 || rep.EnergyPairs == 0 {
			t.Errorf("%v: zero work counters", p)
		}
	}
}

func TestEnergiesTrackReference(t *testing.T) {
	// Figure 9's structure: HCT/OBC/VolR6 packages close to the naive
	// surface-r⁶ energy; Tinker (STILL) around 70 %.
	m := molecule.GenerateProtein("f9", 900, 62)
	q := surface.Sample(m, surface.Default())
	Rref := gb.BornRadiiR6(m, q)
	eRef := gb.EpolNaive(m, Rref, gb.Exact)

	close := func(p Package, lo, hi float64) {
		rep, err := Run(p, m, gb.Exact, 0)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		ratio := rep.Energy / eRef
		if ratio < lo || ratio > hi {
			t.Errorf("%v: energy ratio %v outside [%v, %v]", p, ratio, lo, hi)
		}
	}
	close(AmberLike, 0.8, 1.25)
	close(GromacsLike, 0.8, 1.25)
	close(NAMDLike, 0.7, 1.3)
	close(GBr6Like, 0.75, 1.35)
	close(TinkerLike, 0.45, 0.92) // the 70%-of-naive package
}

func TestOutOfMemoryLimits(t *testing.T) {
	big := molecule.GenerateProtein("big", 14000, 63)
	var oom *ErrOutOfMemory
	if _, err := Run(TinkerLike, big, gb.Exact, 0); !errors.As(err, &oom) {
		t.Error("Tinker did not OOM at 14k atoms")
	}
	if _, err := Run(GBr6Like, big, gb.Exact, 0); !errors.As(err, &oom) {
		t.Error("GBr6 did not OOM at 14k atoms")
	}
	if _, err := Run(AmberLike, big, gb.Exact, 0); err != nil {
		t.Errorf("Amber should handle 14k atoms: %v", err)
	}
	mid := molecule.GenerateProtein("mid", 11000, 64)
	if _, err := Run(TinkerLike, mid, gb.Exact, 0); err != nil {
		t.Errorf("Tinker should handle 11k atoms: %v", err)
	}
}

func TestCutoffOverride(t *testing.T) {
	m := molecule.GenerateProtein("c", 800, 65)
	def, err := Run(GromacsLike, m, gb.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(GromacsLike, m, gb.Exact, 2)
	if err != nil {
		t.Fatal(err)
	}
	if small.RadiiPairs >= def.RadiiPairs {
		t.Error("cutoff override did not reduce work")
	}
	// Tiny cutoffs give badly wrong energies (under-descreened Born radii
	// inflate the self term) — the paper's point about cutoff 2 being "not
	// a reasonable cutoff" for Gromacs on CMV.
	if rel := math.Abs(small.Energy-def.Energy) / math.Abs(def.Energy); rel < 0.2 {
		t.Errorf("cutoff-2 energy %v suspiciously close to default-cutoff %v", small.Energy, def.Energy)
	}
}

func TestSimTimeShapes(t *testing.T) {
	m := molecule.GenerateProtein("t", 2000, 66)
	mach := simtime.Lonestar4()
	oc := simtime.DefaultOpCosts()

	amber, err := Run(AmberLike, m, gb.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	t1 := amber.SimTime(1, 1, mach, oc, gb.Exact)
	t12 := amber.SimTime(12, 1, mach, oc, gb.Exact)
	if t12.TotalSec >= t1.TotalSec {
		t.Errorf("Amber 12 ranks (%v) not faster than 1 (%v)", t12.TotalSec, t1.TotalSec)
	}

	// Gromacs' faster kernels: quicker than Amber at equal core counts.
	gro, err := Run(GromacsLike, m, gb.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g := gro.SimTime(12, 1, mach, oc, gb.Exact); g.TotalSec >= t12.TotalSec {
		t.Errorf("Gromacs (%v) not faster than Amber (%v)", g.TotalSec, t12.TotalSec)
	}

	// NAMD's framework overhead: slower than Amber.
	namd, err := Run(NAMDLike, m, gb.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nm := namd.SimTime(12, 1, mach, oc, gb.Exact); nm.TotalSec <= t12.TotalSec {
		t.Errorf("NAMD (%v) not slower than Amber (%v)", nm.TotalSec, t12.TotalSec)
	}

	// Shared-only packages ignore extra ranks.
	tink, err := Run(TinkerLike, m, gb.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tk := tink.SimTime(12, 1, mach, oc, gb.Exact); tk.Cores != 1 {
		t.Errorf("Tinker used %d cores with 12 ranks × 1 thread", tk.Cores)
	}
	if tk := tink.SimTime(1, 12, mach, oc, gb.Exact); tk.Cores != 12 {
		t.Errorf("Tinker OpenMP should use 12 threads, got %d cores", tk.Cores)
	}
	gbr, err := Run(GBr6Like, m, gb.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g := gbr.SimTime(12, 12, mach, oc, gb.Exact); g.Cores != 1 {
		t.Errorf("GBr6 is serial but used %d cores", g.Cores)
	}
}

func TestAmberRankCap(t *testing.T) {
	m := molecule.GenerateProtein("cap", 1000, 67)
	rep, err := Run(AmberLike, m, gb.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	mach := simtime.Lonestar4()
	oc := simtime.DefaultOpCosts()
	at256 := rep.SimTime(256, 1, mach, oc, gb.Exact)
	at512 := rep.SimTime(512, 1, mach, oc, gb.Exact)
	if at512.Cores != 256 || at256.Cores != 256 {
		t.Errorf("Amber rank cap: %d / %d", at256.Cores, at512.Cores)
	}
}

func TestApproximateMathSpeedsUpSim(t *testing.T) {
	m := molecule.GenerateProtein("am", 1500, 68)
	rep, err := Run(AmberLike, m, gb.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	mach := simtime.Lonestar4()
	oc := simtime.DefaultOpCosts()
	ex := rep.SimTime(12, 1, mach, oc, gb.Exact)
	ap := rep.SimTime(12, 1, mach, oc, gb.Approximate)
	ratio := ex.ComputeSec / ap.ComputeSec
	if ratio < 1.3 || ratio > 1.55 {
		t.Errorf("approximate-math speedup %v, want ≈1.42", ratio)
	}
}
