package gb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func posGen(scale float64) func(v []reflect.Value, r *rand.Rand) {
	return func(v []reflect.Value, r *rand.Rand) {
		for i := range v {
			v[i] = reflect.ValueOf(r.Float64()*scale + 1e-3)
		}
	}
}

// Property: f_GB is symmetric in the Born radii.
func TestPropertyFGBSymmetric(t *testing.T) {
	f := func(r2, ri, rj float64) bool {
		return FGB(r2, ri, rj) == FGB(r2, rj, ri)
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(31)), Values: posGen(100)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: f_GB interpolates between sqrt(RiRj) at r=0 and r at r→∞:
// max(r, sqrt(RiRj)·e^{-r²/(4RiRj)/2}) ≤ f_GB ≤ sqrt(r² + RiRj).
func TestPropertyFGBBounds(t *testing.T) {
	f := func(r2, ri, rj float64) bool {
		v := FGB(r2, ri, rj)
		upper := math.Sqrt(r2 + ri*rj)
		lower := math.Sqrt(r2)
		return v <= upper+1e-12 && v >= lower-1e-12
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(32)), Values: posGen(50)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: PairTerm has the sign of q_i·q_j (f_GB is positive).
func TestPropertyPairTermSign(t *testing.T) {
	f := func(qi, qj, r2, ri, rj float64) bool {
		qi -= 25 // allow negative charges
		term := PairTerm(qi, qj, r2, ri, rj, Exact)
		want := qi * qj
		return (term > 0) == (want > 0) || term == 0 || want == 0
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(33)), Values: posGen(50)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: BornFromIntegral is monotone — a larger integral (more nearby
// surface) gives a smaller Born radius.
func TestPropertyBornFromIntegralMonotone(t *testing.T) {
	f := func(s1, s2, vdw float64) bool {
		vdw = 0.5 + vdw/100
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return BornFromIntegral(s2, vdw, 100) <= BornFromIntegral(s1, vdw, 100)+1e-12
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(34)), Values: posGen(10)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Same property for the r⁴ form.
	f4 := func(s1, s2, vdw float64) bool {
		vdw = 0.5 + vdw/100
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return BornFromIntegralR4(s2, vdw, 100) <= BornFromIntegralR4(s1, vdw, 100)+1e-12
	}
	if err := quick.Check(f4, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(35)), Values: posGen(10)}); err != nil {
		t.Error(err)
	}
}

// Property: both Born conversions respect their floor and cap for all
// inputs (no NaN, no out-of-range radii).
func TestPropertyBornConversionRange(t *testing.T) {
	f := func(s, vdw, rcap float64) bool {
		s -= 5 // include negative integrals
		vdw = 0.3 + vdw/50
		rcap = vdw + rcap
		r6 := BornFromIntegral(s, vdw, rcap)
		r4 := BornFromIntegralR4(s, vdw, rcap)
		ok := func(r float64) bool {
			return !math.IsNaN(r) && r >= vdw-1e-12 && r <= rcap*(1+1e-9)
		}
		return ok(r6) && ok(r4)
	}
	cfg := &quick.Config{MaxCount: 600, Rand: rand.New(rand.NewSource(36)), Values: posGen(20)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: FastExp stays within its documented error band on the GB
// operating range for random inputs.
func TestPropertyFastExpBand(t *testing.T) {
	f := func(x float64) bool {
		x = -math.Mod(math.Abs(x), 30) // GB exponents are ≤ 0
		got := FastExp(x)
		want := math.Exp(x)
		if want == 0 {
			return got == 0
		}
		return math.Abs(got-want)/want < 0.07
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Error(err)
	}
}
