package gb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

func TestTau(t *testing.T) {
	if got := Tau(80); math.Abs(got-0.9875) > 1e-12 {
		t.Errorf("Tau(80) = %v", got)
	}
	if got := Tau(1); got != 0 {
		t.Errorf("Tau(1) = %v (vacuum should have no polarization)", got)
	}
}

func TestFGBLimits(t *testing.T) {
	// r → 0: f_GB → sqrt(R_i R_j).
	if got := FGB(0, 2, 8); math.Abs(got-4) > 1e-12 {
		t.Errorf("FGB(0,2,8) = %v, want 4", got)
	}
	// r → ∞: f_GB → r (Coulomb limit).
	r2 := 1e8
	if got := FGB(r2, 2, 3); math.Abs(got-math.Sqrt(r2)) > 1e-3 {
		t.Errorf("FGB large-r = %v, want %v", got, math.Sqrt(r2))
	}
	// f_GB is between max(r, sqrt(RiRj)) bounds.
	f := FGB(9, 2, 2)
	if f < 3 || f > math.Sqrt(9+4) {
		t.Errorf("FGB(9,2,2) = %v out of [3, sqrt13]", f)
	}
}

func TestFGBMonotoneInDistance(t *testing.T) {
	f := func(r2a, r2b, ri, rj float64) bool {
		r2a, r2b = math.Abs(r2a), math.Abs(r2b)
		ri, rj = math.Abs(ri)+0.1, math.Abs(rj)+0.1
		if r2a > r2b {
			r2a, r2b = r2b, r2a
		}
		return FGB(r2a, ri, rj) <= FGB(r2b, ri, rj)+1e-12
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Rand:     rand.New(rand.NewSource(3)),
		Values: func(v []reflect.Value, r *rand.Rand) {
			for i := range v {
				v[i] = reflect.ValueOf(r.Float64() * 100)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFastInvSqrtAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		x := math.Exp(r.Float64()*20 - 5) // 6.7e-3 … 3e6
		got := FastInvSqrt(x)
		want := 1 / math.Sqrt(x)
		if rel := math.Abs(got-want) / want; rel > 1e-5 {
			t.Fatalf("FastInvSqrt(%v): rel err %v", x, rel)
		}
	}
}

func TestFastExpAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		x := r.Float64()*20 - 19 // GB exponents are in [-inf, 0]; test [-19,1]
		got := FastExp(x)
		want := math.Exp(x)
		if rel := math.Abs(got-want) / want; rel > 0.07 {
			t.Fatalf("FastExp(%v): rel err %v", x, rel)
		}
	}
	if FastExp(-1000) != 0 {
		t.Error("FastExp(-1000) should underflow to 0")
	}
	if !math.IsInf(FastExp(1000), 1) {
		t.Error("FastExp(1000) should overflow to +Inf")
	}
}

func TestPairTermApproximateClose(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		rij2 := r.Float64() * 400
		ri := 1 + r.Float64()*5
		rj := 1 + r.Float64()*5
		e := PairTerm(1, -1, rij2, ri, rj, Exact)
		a := PairTerm(1, -1, rij2, ri, rj, Approximate)
		if rel := math.Abs(e-a) / math.Abs(e); rel > 0.05 {
			t.Fatalf("approximate pair term off by %v at r²=%v", rel, rij2)
		}
	}
}

func TestBornFromIntegral(t *testing.T) {
	// s for an isolated sphere of radius r is 4π/r³ ⇒ R = r.
	r := 1.7
	s := 4 * math.Pi / (r * r * r)
	if got := BornFromIntegral(s, r, 100); math.Abs(got-r) > 1e-12 {
		t.Errorf("R = %v, want %v", got, r)
	}
	// Noise guard: negative integral caps at rcap (up to roundoff).
	if got := BornFromIntegral(-1, 1.5, 50); math.Abs(got-50) > 1e-9 {
		t.Errorf("negative s gave %v, want cap 50", got)
	}
	// vdW floor.
	if got := BornFromIntegral(1e9, 1.5, 50); got != 1.5 {
		t.Errorf("huge s gave %v, want vdW floor 1.5", got)
	}
}

func singleAtom(r float64) *molecule.Molecule {
	return &molecule.Molecule{Name: "one", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: r, Charge: -1},
	}}
}

func TestBornRadiusIsolatedAtomEqualsVdW(t *testing.T) {
	// The defining property of the surface r⁶ formulation: an isolated
	// atom's Born radius equals its vdW radius.
	m := singleAtom(1.52)
	q := surface.Sample(m, surface.Options{SubdivLevel: 2, Degree: 2})
	R := BornRadiiR6(m, q)
	if math.Abs(R[0]-1.52) > 0.02 {
		t.Errorf("isolated Born radius %v, want 1.52", R[0])
	}
	R4 := BornRadiiR4(m, q)
	if math.Abs(R4[0]-1.52) > 0.02 {
		t.Errorf("isolated r⁴ Born radius %v, want 1.52", R4[0])
	}
}

func TestBornRadiusBuriedLargerThanSurface(t *testing.T) {
	// In a protein, buried atoms have larger Born radii than surface atoms.
	m := molecule.GenerateProtein("b", 1500, 77)
	q := surface.Sample(m, surface.Default())
	R := BornRadiiR6(m, q)
	c := m.Centroid()
	b := m.Bounds()
	rOut := b.Size().MaxComponent() / 2
	var inner, outer []float64
	for i, a := range m.Atoms {
		d := a.Pos.Dist(c)
		if d < 0.3*rOut {
			inner = append(inner, R[i])
		} else if d > 0.8*rOut {
			outer = append(outer, R[i])
		}
	}
	if len(inner) == 0 || len(outer) == 0 {
		t.Skip("degenerate molecule shape")
	}
	if mean(inner) <= mean(outer) {
		t.Errorf("buried atoms R̄=%v not larger than surface atoms R̄=%v", mean(inner), mean(outer))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestEpolNaiveSingleCharge(t *testing.T) {
	// Single ion: E = -τ/2 · k_e · q²/R (the Born equation).
	m := singleAtom(2.0)
	R := []float64{2.0}
	got := EpolNaive(m, R, Exact)
	want := -0.5 * Tau(SolventDielectric) * CoulombConstant * 1.0 / 2.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Born ion energy %v, want %v", got, want)
	}
}

func TestEpolNaiveNegativeForRealisticMolecule(t *testing.T) {
	m := molecule.GenerateProtein("e", 400, 5)
	q := surface.Sample(m, surface.Default())
	R := BornRadiiR6(m, q)
	e := EpolNaive(m, R, Exact)
	if e >= 0 {
		t.Errorf("E_pol = %v, expected negative (relaxation lowers energy)", e)
	}
	// Self energy alone must also be negative and dominate the sign.
	if se := SelfEnergy(m, R); se >= 0 || se < e*2 {
		t.Errorf("self energy %v implausible vs total %v", se, e)
	}
}

func TestEpolNaiveSymmetryUnderRelabeling(t *testing.T) {
	// Energy must not depend on atom order.
	m := molecule.GenerateProtein("s", 120, 8)
	q := surface.Sample(m, surface.Default())
	R := BornRadiiR6(m, q)
	e1 := EpolNaive(m, R, Exact)

	// Reverse atom order.
	rev := &molecule.Molecule{Name: "rev", Atoms: make([]molecule.Atom, m.N())}
	Rrev := make([]float64, m.N())
	for i := range m.Atoms {
		j := m.N() - 1 - i
		rev.Atoms[i] = m.Atoms[j]
		Rrev[i] = R[j]
	}
	e2 := EpolNaive(rev, Rrev, Exact)
	if math.Abs(e1-e2) > 1e-9*math.Abs(e1) {
		t.Errorf("energy changed under relabeling: %v vs %v", e1, e2)
	}
}

func TestEpolRigidInvariance(t *testing.T) {
	// E_pol depends only on internal geometry: rigid motion leaves it
	// unchanged (Born radii recomputed from the moved surface).
	m := molecule.GenerateProtein("ri", 200, 9)
	q := surface.Sample(m, surface.Default())
	R := BornRadiiR6(m, q)
	e1 := EpolNaive(m, R, Exact)

	tr := geom.RotationAxisAngle(geom.V(0, 1, 1), 0.8)
	tr.T = geom.V(100, -30, 7)
	mt := m.Transform(tr)
	qt := surface.Sample(mt, surface.Default())
	Rt := BornRadiiR6(mt, qt)
	e2 := EpolNaive(mt, Rt, Exact)
	// The icosphere sampling directions are lab-frame-fixed, so rotating
	// the molecule changes the surface discretization slightly; only the
	// discretization noise (≲1–2% at default resolution) may differ.
	if rel := math.Abs(e1-e2) / math.Abs(e1); rel > 0.02 {
		t.Errorf("energy changed under rigid motion by %v: %v vs %v", rel, e1, e2)
	}
}

func BenchmarkEpolNaive1000(b *testing.B) {
	m := molecule.GenerateProtein("bench", 1000, 1)
	q := surface.Sample(m, surface.Default())
	R := BornRadiiR6(m, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EpolNaive(m, R, Exact)
	}
}

func BenchmarkPairTermExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PairTerm(0.3, -0.2, 55, 2, 3, Exact)
	}
}

func BenchmarkPairTermApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PairTerm(0.3, -0.2, 55, 2, 3, Approximate)
	}
}
