// Package gb implements the Generalized-Born physics shared by every engine
// in the library: the GB pair function f_GB, the STILL-style polarization
// energy (Eq. 2 of the paper), the surface-based r⁶/r⁴ Born-radius
// integrals (Eqs. 3–4), naïve exact reference evaluators, and the
// "approximate math" fast square-root / exponential the paper toggles in
// its experiments.
package gb

import (
	"math"

	"octgb/internal/molecule"
	"octgb/internal/surface"
)

// SolventDielectric is the relative permittivity of water used throughout
// the paper's experiments.
const SolventDielectric = 80.0

// CoulombConstant converts e²/Å to kcal/mol.
const CoulombConstant = 332.0636

// Tau is the GB solvation prefactor (1 − 1/ε_solv); the polarization energy
// is E_pol = −(τ/2)·k_e·Σ q_i q_j / f_GB.
func Tau(epsSolv float64) float64 { return 1 - 1/epsSolv }

// MathMode selects exact or approximate (fast) math for sqrt/exp, matching
// the paper's "approximate math on/off" experiment dimension.
type MathMode int

const (
	// Exact uses math.Sqrt and math.Exp.
	Exact MathMode = iota
	// Approximate uses bit-trick inverse square root (two Newton steps)
	// and a Schraudolph-style exponential. Error is a few percent; the
	// paper reports a 4–5% error shift and ~1.42× speedup.
	Approximate
)

// FGB evaluates the GB pair function
//
//	f_GB(i,j) = sqrt(r_ij² + R_i·R_j·exp(−r_ij²/(4·R_i·R_j)))
//
// given the squared distance and the two Born radii.
func FGB(rij2, Ri, Rj float64) float64 {
	rr := Ri * Rj
	return math.Sqrt(rij2 + rr*math.Exp(-rij2/(4*rr)))
}

// PairTerm returns q_i·q_j / f_GB for one ordered pair, with the selected
// math mode. Multiply by −τ·k_e/2 and sum over all ordered pairs (including
// i=j, whose f_GB is R_i) to obtain E_pol.
func PairTerm(qi, qj, rij2, Ri, Rj float64, mode MathMode) float64 {
	rr := Ri * Rj
	if mode == Approximate {
		return qi * qj * FastInvSqrt(rij2+rr*FastExp(-rij2/(4*rr)))
	}
	return qi * qj / math.Sqrt(rij2+rr*math.Exp(-rij2/(4*rr)))
}

// FastInvSqrt is the 64-bit variant of the bit-trick inverse square root
// with two Newton–Raphson refinements (relative error < 5e-6, enough that
// the remaining approximate-math error budget is dominated by FastExp).
func FastInvSqrt(x float64) float64 {
	i := math.Float64bits(x)
	i = 0x5FE6EB50C7B537A9 - (i >> 1)
	y := math.Float64frombits(i)
	y = y * (1.5 - 0.5*x*y*y)
	y = y * (1.5 - 0.5*x*y*y)
	return y
}

// FastExp is a Schraudolph-style exponential: it manufactures the IEEE-754
// exponent field directly. Relative error is ≈±4% over the GB-relevant
// range, mirroring the 4–5% energy shift the paper attributes to
// approximate math.
func FastExp(x float64) float64 {
	// Clamp to the range where the trick is valid.
	if x < -700 {
		return 0
	}
	if x > 700 {
		return math.Inf(1)
	}
	// Standard Schraudolph on the high 32 bits of the double.
	const a = 1048576 / math.Ln2 // 2^20 / ln 2
	const b = 1072693248 - 60801 // bias<<20 minus error-minimizing shift
	hi := int64(a*x) + b
	return math.Float64frombits(uint64(hi) << 32)
}

// BornFromIntegral converts the accumulated surface integral
// s = Σ w_q (p_q−p_a)·n_q / |p_q−p_a|⁶ into the r⁶ Born radius
// R = (s/4π)^(−1/3), floored at the atom's vdW radius (the paper's
// max{r_a, ·}) and capped at rcap (a physical bound, e.g. the molecule
// diameter) to absorb quadrature noise for deeply buried atoms.
func BornFromIntegral(s, vdw, rcap float64) float64 {
	if rcap < vdw {
		rcap = vdw
	}
	sMin := 4 * math.Pi / (rcap * rcap * rcap)
	if s < sMin {
		s = sMin
	}
	r := math.Pow(s/(4*math.Pi), -1.0/3.0)
	if r < vdw {
		return vdw
	}
	return r
}

// BornFromIntegralR4 converts the accumulated r⁴ (Coulomb-field) surface
// integral s = Σ w_q (p_q−p_a)·n_q / |p_q−p_a|⁴ into the Born radius
// R = 4π/s (Eq. 3), with the same vdW floor and cap guards as the r⁶ form.
func BornFromIntegralR4(s, vdw, rcap float64) float64 {
	if rcap < vdw {
		rcap = vdw
	}
	sMin := 4 * math.Pi / rcap
	if s < sMin {
		s = sMin
	}
	r := 4 * math.Pi / s
	if r < vdw {
		return vdw
	}
	return r
}

// BornRadiiR6 computes the exact (no treecode) surface-based r⁶ Born radii
// of every atom: Eq. 4 evaluated by direct summation over all q-points.
func BornRadiiR6(mol *molecule.Molecule, q []surface.QPoint) []float64 {
	out := make([]float64, mol.N())
	rcap := bornCap(mol)
	for i := range mol.Atoms {
		a := &mol.Atoms[i]
		var s float64
		for k := range q {
			d := q[k].Pos.Sub(a.Pos)
			d2 := d.Norm2()
			s += q[k].Weight * d.Dot(q[k].Normal) / (d2 * d2 * d2)
		}
		out[i] = BornFromIntegral(s, a.Radius, rcap)
	}
	return out
}

// BornRadiiR4 computes the r⁴ (Coulomb-field) Born radii of Eq. 3:
// 1/R = (1/4π) Σ w_q (p_q−p_a)·n_q / |p_q−p_a|⁴.
func BornRadiiR4(mol *molecule.Molecule, q []surface.QPoint) []float64 {
	out := make([]float64, mol.N())
	rcap := bornCap(mol)
	for i := range mol.Atoms {
		a := &mol.Atoms[i]
		var s float64
		for k := range q {
			d := q[k].Pos.Sub(a.Pos)
			d2 := d.Norm2()
			s += q[k].Weight * d.Dot(q[k].Normal) / (d2 * d2)
		}
		// 1/R = s/(4π); same noise guards as r⁶.
		sMin := 4 * math.Pi / rcap
		if s < sMin {
			s = sMin
		}
		r := 4 * math.Pi / s
		if r < a.Radius {
			r = a.Radius
		}
		out[i] = r
	}
	return out
}

// bornCap returns the Born-radius cap used to absorb quadrature noise: the
// diameter of the molecule's bounding box (no physical Born radius exceeds
// the molecular extent).
func bornCap(mol *molecule.Molecule) float64 {
	b := mol.Bounds()
	if b.IsEmpty() {
		return 1
	}
	d := 2 * b.HalfDiagonal()
	if d < 10 {
		d = 10
	}
	return d
}

// EpolNaive computes the exact GB polarization energy (kcal/mol) by the
// full double sum of Eq. 2, including self terms (f_GB(i,i) = R_i).
func EpolNaive(mol *molecule.Molecule, R []float64, mode MathMode) float64 {
	tau := Tau(SolventDielectric)
	var sum float64
	n := mol.N()
	for i := 0; i < n; i++ {
		ai := &mol.Atoms[i]
		// Self term: r_ii = 0 ⇒ f_GB = R_i.
		sum += ai.Charge * ai.Charge / R[i]
		for j := i + 1; j < n; j++ {
			aj := &mol.Atoms[j]
			t := PairTerm(ai.Charge, aj.Charge, ai.Pos.Dist2(aj.Pos), R[i], R[j], mode)
			sum += 2 * t // ordered pairs (i,j) and (j,i)
		}
	}
	return -0.5 * tau * CoulombConstant * sum
}

// SelfEnergy returns only the diagonal of Eq. 2 — useful for separating the
// pair contribution in tests.
func SelfEnergy(mol *molecule.Molecule, R []float64) float64 {
	tau := Tau(SolventDielectric)
	var sum float64
	for i := range mol.Atoms {
		q := mol.Atoms[i].Charge
		sum += q * q / R[i]
	}
	return -0.5 * tau * CoulombConstant * sum
}
