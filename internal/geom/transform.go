package geom

import "math"

// Rigid is a rigid-body transform (rotation followed by translation),
// x ↦ R·x + T. The paper (§IV-C) observes that for docking the same octree
// can be reused at thousands of ligand poses by transforming it; Rigid is
// the transform applied in that reuse path.
type Rigid struct {
	R [3][3]float64 // rotation matrix, row-major
	T Vec3          // translation
}

// Identity returns the identity transform.
func Identity() Rigid {
	return Rigid{R: [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}
}

// Translation returns a pure translation by t.
func Translation(t Vec3) Rigid {
	r := Identity()
	r.T = t
	return r
}

// RotationAxisAngle returns the rotation about the (normalized) axis by
// angle radians, using Rodrigues' formula.
func RotationAxisAngle(axis Vec3, angle float64) Rigid {
	u := axis.Unit()
	c, s := math.Cos(angle), math.Sin(angle)
	oc := 1 - c
	return Rigid{R: [3][3]float64{
		{c + u.X*u.X*oc, u.X*u.Y*oc - u.Z*s, u.X*u.Z*oc + u.Y*s},
		{u.Y*u.X*oc + u.Z*s, c + u.Y*u.Y*oc, u.Y*u.Z*oc - u.X*s},
		{u.Z*u.X*oc - u.Y*s, u.Z*u.Y*oc + u.X*s, c + u.Z*u.Z*oc},
	}}
}

// IsTranslation reports whether the transform carries no rotation — R is
// exactly the identity matrix, so Apply reduces to p + T. Exactness matters:
// the translation-only fast paths (surface.ComposePose, octree reuse)
// promise bitwise-identical results, which only holds when the rotation
// part contributes nothing at all, so no epsilon is involved here.
func (m Rigid) IsTranslation() bool {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.R[i][j] != want {
				return false
			}
		}
	}
	return true
}

// Apply transforms a point: R·p + T.
func (m Rigid) Apply(p Vec3) Vec3 {
	return Vec3{
		m.R[0][0]*p.X + m.R[0][1]*p.Y + m.R[0][2]*p.Z + m.T.X,
		m.R[1][0]*p.X + m.R[1][1]*p.Y + m.R[1][2]*p.Z + m.T.Y,
		m.R[2][0]*p.X + m.R[2][1]*p.Y + m.R[2][2]*p.Z + m.T.Z,
	}
}

// ApplyVector transforms a direction (rotation only, no translation);
// used for surface normals.
func (m Rigid) ApplyVector(v Vec3) Vec3 {
	return Vec3{
		m.R[0][0]*v.X + m.R[0][1]*v.Y + m.R[0][2]*v.Z,
		m.R[1][0]*v.X + m.R[1][1]*v.Y + m.R[1][2]*v.Z,
		m.R[2][0]*v.X + m.R[2][1]*v.Y + m.R[2][2]*v.Z,
	}
}

// Compose returns the transform that applies n first, then m: (m∘n)(p) =
// m(n(p)).
func (m Rigid) Compose(n Rigid) Rigid {
	var out Rigid
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.R[i][j] = m.R[i][0]*n.R[0][j] + m.R[i][1]*n.R[1][j] + m.R[i][2]*n.R[2][j]
		}
	}
	out.T = m.Apply(n.T)
	return out
}

// Inverse returns the inverse transform. For a rigid transform the inverse
// rotation is the transpose.
func (m Rigid) Inverse() Rigid {
	var out Rigid
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.R[i][j] = m.R[j][i]
		}
	}
	out.T = out.ApplyVector(m.T).Scale(-1)
	// ApplyVector used R^T·T; negate for -R^T·T.
	return out
}
