package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestIdentityTransform(t *testing.T) {
	p := V(1, -2, 3)
	if got := Identity().Apply(p); got != p {
		t.Errorf("Identity.Apply = %v", got)
	}
}

func TestTranslation(t *testing.T) {
	m := Translation(V(1, 2, 3))
	if got := m.Apply(V(10, 10, 10)); got != V(11, 12, 13) {
		t.Errorf("translate = %v", got)
	}
	// Vectors are unaffected by translation.
	if got := m.ApplyVector(V(1, 0, 0)); got != V(1, 0, 0) {
		t.Errorf("ApplyVector translated: %v", got)
	}
}

func TestRotationPreservesLengthAndAngle(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for n := 0; n < 50; n++ {
		axis := V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		if axis.Norm() < 1e-6 {
			continue
		}
		m := RotationAxisAngle(axis, r.Float64()*2*math.Pi)
		a := V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		b := V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		ra, rb := m.Apply(a), m.Apply(b)
		if !almostEqual(ra.Norm(), a.Norm(), 1e-12) {
			t.Fatalf("rotation changed length: %v -> %v", a.Norm(), ra.Norm())
		}
		if !almostEqual(ra.Dot(rb), a.Dot(b), 1e-10) {
			t.Fatalf("rotation changed dot: %v -> %v", a.Dot(b), ra.Dot(rb))
		}
	}
}

func TestRotationQuarterTurn(t *testing.T) {
	m := RotationAxisAngle(V(0, 0, 1), math.Pi/2)
	got := m.Apply(V(1, 0, 0))
	if !vecAlmostEqual(got, V(0, 1, 0), 1e-14) {
		t.Errorf("quarter turn of x̂ = %v, want ŷ", got)
	}
}

func TestComposeAndInverse(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for n := 0; n < 50; n++ {
		m := RotationAxisAngle(V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64()).Add(V(1e-3, 0, 0)), r.Float64()*6)
		m.T = V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		nTr := RotationAxisAngle(V(r.NormFloat64(), 1, r.NormFloat64()), r.Float64()*6)
		nTr.T = V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())

		p := V(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		// Compose applies right operand first.
		want := m.Apply(nTr.Apply(p))
		got := m.Compose(nTr).Apply(p)
		if !vecAlmostEqual(got, want, 1e-10) {
			t.Fatalf("compose mismatch: %v vs %v", got, want)
		}
		// Inverse round-trips.
		back := m.Inverse().Apply(m.Apply(p))
		if !vecAlmostEqual(back, p, 1e-10) {
			t.Fatalf("inverse round-trip: %v vs %v", back, p)
		}
	}
}
