package geom

import "math"

// AABB is an axis-aligned bounding box given by its minimum and maximum
// corners. The zero value is the "empty" box (Min=+Inf, Max=-Inf is produced
// by EmptyAABB; the literal zero value is a degenerate point at the origin,
// so use EmptyAABB when accumulating).
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns the identity element for Union: a box that contains
// nothing and leaves any box unchanged when united with it.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// NewAABB returns the smallest box containing all the given points.
func NewAABB(pts ...Vec3) AABB {
	b := EmptyAABB()
	for _, p := range pts {
		b = b.ExpandPoint(p)
	}
	return b
}

// ExpandPoint returns the smallest box containing b and p.
func (b AABB) ExpandPoint(p Vec3) AABB {
	return AABB{
		Min: Vec3{math.Min(b.Min.X, p.X), math.Min(b.Min.Y, p.Y), math.Min(b.Min.Z, p.Z)},
		Max: Vec3{math.Max(b.Max.X, p.X), math.Max(b.Max.Y, p.Y), math.Max(b.Max.Z, p.Z)},
	}
}

// Union returns the smallest box containing both b and c.
func (b AABB) Union(c AABB) AABB {
	return AABB{
		Min: Vec3{math.Min(b.Min.X, c.Min.X), math.Min(b.Min.Y, c.Min.Y), math.Min(b.Min.Z, c.Min.Z)},
		Max: Vec3{math.Max(b.Max.X, c.Max.X), math.Max(b.Max.Y, c.Max.Y), math.Max(b.Max.Z, c.Max.Z)},
	}
}

// Center returns the box center.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box extents along each axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Contains reports whether p lies inside b (inclusive of the boundary).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// HalfDiagonal returns the distance from the center to a corner, i.e. the
// radius of the smallest sphere centered at Center() that encloses the box.
func (b AABB) HalfDiagonal() float64 { return b.Size().Norm() / 2 }

// Cube returns the smallest axis-aligned cube sharing b's center that
// contains b. Octrees subdivide cubes so all children have identical shape.
func (b AABB) Cube() AABB {
	c := b.Center()
	h := b.Size().MaxComponent() / 2
	d := Vec3{h, h, h}
	return AABB{Min: c.Sub(d), Max: c.Add(d)}
}

// Octant returns the i-th (0..7) octant cube of b. Bit 0 selects the upper
// half in X, bit 1 in Y, bit 2 in Z.
func (b AABB) Octant(i int) AABB {
	c := b.Center()
	o := b
	if i&1 != 0 {
		o.Min.X = c.X
	} else {
		o.Max.X = c.X
	}
	if i&2 != 0 {
		o.Min.Y = c.Y
	} else {
		o.Max.Y = c.Y
	}
	if i&4 != 0 {
		o.Min.Z = c.Z
	} else {
		o.Max.Z = c.Z
	}
	return o
}

// OctantIndex returns which octant of b (relative to its center) the point p
// falls in, matching the bit layout of Octant.
func (b AABB) OctantIndex(p Vec3) int {
	c := b.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	if p.Z >= c.Z {
		i |= 4
	}
	return i
}
