// Package geom provides the small fixed-dimension geometry types used
// throughout the library: 3-vectors, axis-aligned bounding boxes and rigid
// transforms. Everything is value-based and allocation-free so the hot
// treecode loops can use it without GC pressure.
package geom

import "math"

// Vec3 is a 3-component double-precision vector. It is used for atom
// centers, surface points, and surface normals.
type Vec3 struct {
	X, Y, Z float64
}

// V constructs a Vec3 from its components.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm2 returns the squared Euclidean norm |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Norm returns the Euclidean norm |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation (1-t)·v + t·w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// MaxComponent returns the largest component of v.
func (v Vec3) MaxComponent() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// MinComponent returns the smallest component of v.
func (v Vec3) MinComponent() float64 { return math.Min(v.X, math.Min(v.Y, v.Z)) }

// Abs returns the component-wise absolute value of v.
func (v Vec3) Abs() Vec3 { return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)} }

// IsFinite reports whether all components are finite (no NaN/Inf).
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}
