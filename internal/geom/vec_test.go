package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func vecAlmostEqual(a, b Vec3, tol float64) bool {
	return almostEqual(a.X, b.X, tol) && almostEqual(a.Y, b.Y, tol) && almostEqual(a.Z, b.Z, tol)
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	a := V(1, 2, 3)
	b := V(-2, 0.5, 4)
	c := a.Cross(b)
	if math.Abs(c.Dot(a)) > 1e-12 || math.Abs(c.Dot(b)) > 1e-12 {
		t.Errorf("cross product not orthogonal: %v", c)
	}
	// |a×b|² + (a·b)² = |a|²|b|² (Lagrange identity)
	lhs := c.Norm2() + a.Dot(b)*a.Dot(b)
	rhs := a.Norm2() * b.Norm2()
	if !almostEqual(lhs, rhs, 1e-12) {
		t.Errorf("Lagrange identity violated: %v vs %v", lhs, rhs)
	}
}

func TestNormAndDist(t *testing.T) {
	if got := V(3, 4, 0).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := V(1, 1, 1).Dist(V(2, 2, 2)); !almostEqual(got, math.Sqrt(3), 1e-14) {
		t.Errorf("Dist = %v", got)
	}
}

func TestUnit(t *testing.T) {
	u := V(0.3, -7, 2.2).Unit()
	if !almostEqual(u.Norm(), 1, 1e-14) {
		t.Errorf("unit norm = %v", u.Norm())
	}
	if z := (Vec3{}).Unit(); z != (Vec3{}) {
		t.Errorf("zero unit = %v", z)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := V(1, 2, 3), V(-4, 0, 9)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !vecAlmostEqual(got, b, 1e-15) {
		t.Errorf("Lerp(1) = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if !vecAlmostEqual(mid, a.Add(b).Scale(0.5), 1e-15) {
		t.Errorf("Lerp(0.5) = %v", mid)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() || V(0, math.Inf(1), 0).IsFinite() {
		t.Error("non-finite vector reported finite")
	}
}

// Property: the triangle inequality holds for Dist.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		if anyBad(ax, ay, az, bx, by, bz, cx, cy, cz) {
			return true
		}
		a, b, c := V(ax, ay, az), V(bx, by, bz), V(cx, cy, cz)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9*(1+a.Norm()+b.Norm()+c.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: Dot is bilinear in its first argument.
func TestDotBilinearProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, s float64) bool {
		if anyBad(ax, ay, az, bx, by, bz, cx, cy, cz, s) {
			return true
		}
		a, b, c := V(ax, ay, az), V(bx, by, bz), V(cx, cy, cz)
		lhs := a.Scale(s).Add(b).Dot(c)
		rhs := s*a.Dot(c) + b.Dot(c)
		scale := 1 + math.Abs(lhs) + math.Abs(rhs)
		return math.Abs(lhs-rhs) <= 1e-9*scale
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Rand:     rand.New(rand.NewSource(2)),
		Values: func(values []reflect.Value, r *rand.Rand) {
			for i := range values {
				values[i] = reflect.ValueOf(r.Float64()*200 - 100)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
			return true
		}
	}
	return false
}
