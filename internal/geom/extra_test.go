package geom

import (
	"math"
	"testing"
)

func TestAABBContainsBoundary(t *testing.T) {
	b := AABB{Min: V(0, 0, 0), Max: V(1, 1, 1)}
	for _, p := range []Vec3{V(0, 0, 0), V(1, 1, 1), V(0.5, 1, 0)} {
		if !b.Contains(p) {
			t.Errorf("boundary point %v not contained", p)
		}
	}
	for _, p := range []Vec3{V(-1e-12, 0, 0), V(1.0000001, 0.5, 0.5)} {
		if b.Contains(p) {
			t.Errorf("outside point %v contained", p)
		}
	}
}

func TestOctantIndexBitLayout(t *testing.T) {
	b := AABB{Min: V(0, 0, 0), Max: V(2, 2, 2)}
	cases := []struct {
		p    Vec3
		want int
	}{
		{V(0.5, 0.5, 0.5), 0},
		{V(1.5, 0.5, 0.5), 1},
		{V(0.5, 1.5, 0.5), 2},
		{V(0.5, 0.5, 1.5), 4},
		{V(1.5, 1.5, 1.5), 7},
	}
	for _, c := range cases {
		if got := b.OctantIndex(c.p); got != c.want {
			t.Errorf("OctantIndex(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestMinMaxComponents(t *testing.T) {
	v := V(-3, 7, 2)
	if v.MaxComponent() != 7 || v.MinComponent() != -3 {
		t.Errorf("components: max %v min %v", v.MaxComponent(), v.MinComponent())
	}
	if v.Abs() != V(3, 7, 2) {
		t.Errorf("Abs = %v", v.Abs())
	}
}

func TestRotationComposition360(t *testing.T) {
	// Four quarter turns are the identity.
	q := RotationAxisAngle(V(0, 0, 1), math.Pi/2)
	m := q.Compose(q).Compose(q).Compose(q)
	p := V(1, 2, 3)
	if got := m.Apply(p); got.Dist(p) > 1e-12 {
		t.Errorf("4 quarter turns moved %v to %v", p, got)
	}
}

func TestInverseOfComposition(t *testing.T) {
	a := RotationAxisAngle(V(1, 0, 1), 0.7)
	a.T = V(3, -2, 5)
	b := RotationAxisAngle(V(0, 1, 0), 1.9)
	b.T = V(-1, 4, 0)
	ab := a.Compose(b)
	inv := ab.Inverse()
	p := V(0.3, -0.7, 2.2)
	if got := inv.Apply(ab.Apply(p)); got.Dist(p) > 1e-10 {
		t.Errorf("inverse of composition failed: %v", got)
	}
}

func TestDegenerateAABBCube(t *testing.T) {
	// A point box stays a point cube (zero side), but keeps its center.
	b := NewAABB(V(2, 2, 2))
	c := b.Cube()
	if c.Center() != V(2, 2, 2) {
		t.Errorf("degenerate cube center %v", c.Center())
	}
	if c.Size().MaxComponent() != 0 {
		t.Errorf("degenerate cube size %v", c.Size())
	}
}
