package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyAABB(t *testing.T) {
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Error("EmptyAABB not empty")
	}
	b := NewAABB(V(1, 2, 3))
	if got := e.Union(b); got != b {
		t.Errorf("empty union identity: %v", got)
	}
}

func TestNewAABBContainsAll(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := make([]Vec3, 50)
	for i := range pts {
		pts[i] = V(r.NormFloat64()*10, r.NormFloat64()*10, r.NormFloat64()*10)
	}
	b := NewAABB(pts...)
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("box %v does not contain %v", b, p)
		}
	}
}

func TestOctantsPartition(t *testing.T) {
	b := AABB{Min: V(-1, -2, -3), Max: V(5, 4, 3)}
	// Every octant is inside the parent, octants tile the parent volume.
	var vol float64
	for i := 0; i < 8; i++ {
		o := b.Octant(i)
		s := o.Size()
		vol += s.X * s.Y * s.Z
		if !b.Contains(o.Min) || !b.Contains(o.Max) {
			t.Errorf("octant %d escapes parent", i)
		}
	}
	s := b.Size()
	want := s.X * s.Y * s.Z
	if !almostEqual(vol, want, 1e-12) {
		t.Errorf("octant volumes %v != parent %v", vol, want)
	}
}

func TestOctantIndexRoundTrip(t *testing.T) {
	b := AABB{Min: V(0, 0, 0), Max: V(8, 8, 8)}
	r := rand.New(rand.NewSource(3))
	for n := 0; n < 200; n++ {
		p := V(r.Float64()*8, r.Float64()*8, r.Float64()*8)
		i := b.OctantIndex(p)
		if !b.Octant(i).Contains(p) {
			t.Fatalf("point %v assigned octant %d that does not contain it", p, i)
		}
	}
}

func TestCube(t *testing.T) {
	b := AABB{Min: V(0, 0, 0), Max: V(2, 4, 6)}
	c := b.Cube()
	s := c.Size()
	if s.X != s.Y || s.Y != s.Z {
		t.Errorf("cube not cubic: %v", s)
	}
	if s.X != 6 {
		t.Errorf("cube side = %v, want 6", s.X)
	}
	if c.Center() != b.Center() {
		t.Errorf("cube center moved: %v vs %v", c.Center(), b.Center())
	}
	// Cube contains the original box corners.
	if !c.Contains(b.Min) || !c.Contains(b.Max) {
		t.Error("cube does not contain original box")
	}
}

// Property: Union is commutative and contains both operands' centers.
func TestUnionProperty(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3, c1, c2, c3, d1, d2, d3 float64) bool {
		if anyBad(a1, a2, a3, b1, b2, b3, c1, c2, c3, d1, d2, d3) {
			return true
		}
		a := NewAABB(V(a1, a2, a3), V(b1, b2, b3))
		b := NewAABB(V(c1, c2, c3), V(d1, d2, d3))
		u1, u2 := a.Union(b), b.Union(a)
		return u1 == u2 && u1.Contains(a.Center()) && u1.Contains(b.Center())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestHalfDiagonal(t *testing.T) {
	b := AABB{Min: V(0, 0, 0), Max: V(2, 2, 1)}
	want := 1.5 // sqrt(1+1+0.25)
	if got := b.HalfDiagonal(); !almostEqual(got, want, 1e-14) {
		t.Errorf("HalfDiagonal = %v, want %v", got, want)
	}
}
