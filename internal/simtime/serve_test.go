package simtime

import (
	"testing"
	"time"
)

// within asserts got is inside ±tol (fractional) of want.
func within(t *testing.T, name string, got, want time.Duration, tol float64) {
	t.Helper()
	lo := time.Duration(float64(want) * (1 - tol))
	hi := time.Duration(float64(want) * (1 + tol))
	if got < lo || got > hi {
		t.Errorf("%s = %v, want %v ±%.0f%%", name, got, want, tol*100)
	}
}

// TestServeCostsCalibration pins the model to the committed benchmark
// anchors (BENCH_serve.json, BENCH_stream.json): the surrogates must
// reproduce the measured service times they were calibrated on.
func TestServeCostsCalibration(t *testing.T) {
	sc := DefaultServeCosts()

	// Cold prepare at 2500 atoms measured 717 ms; warm eval 21.4 ms.
	cold := sc.Energy(2500, true) - sc.Energy(2500, false)
	within(t, "cold build 2500", cold, 717*time.Millisecond, 0.10)
	within(t, "warm eval 2500", sc.Energy(2500, false), 21400*time.Microsecond, 0.10)

	// 64 batched poses on a 1250-atom complex measured 11.44 s total.
	within(t, "sweep batch 64×1250", sc.SweepBatch(1250, 64, true), 11440*time.Millisecond, 0.10)

	// Stream: create at 4000 atoms measured 659 ms, a 10-mover frame 43.5 ms.
	within(t, "stream create 4000", sc.StreamCreate(4000), 659*time.Millisecond, 0.10)
	within(t, "stream frame 10", sc.StreamFrame(10), 43500*time.Microsecond, 0.10)
}

// TestServeCostsShape checks the structural relations the simulator leans
// on: cold ≫ warm, costs grow with size, batches amortize the prepare, and
// incremental frames are far cheaper than re-evaluating the molecule.
func TestServeCostsShape(t *testing.T) {
	sc := DefaultServeCosts()

	if sc.Energy(2500, true) < 10*sc.Energy(2500, false) {
		t.Errorf("cold/warm ratio too small: %v vs %v", sc.Energy(2500, true), sc.Energy(2500, false))
	}
	if sc.Energy(500, false) >= sc.Energy(5000, false) {
		t.Error("warm eval not monotone in atoms")
	}

	// Batching: one 8-pose batch must beat eight 1-pose batches (the
	// shared prepare is paid once).
	batched := sc.SweepBatch(1250, 8, true)
	sequential := 8 * sc.SweepBatch(1250, 1, true)
	if batched >= sequential {
		t.Errorf("batch does not amortize: %v vs %v sequential", batched, sequential)
	}

	// A 10-mover frame on a 4000-atom session is far cheaper than
	// re-preparing the session from scratch (the incremental engine's
	// reason to exist; measured 7.5×, modeled well past 5×).
	if 5*sc.StreamFrame(10) >= sc.StreamCreate(4000) {
		t.Errorf("frame %v not ≪ re-create %v", sc.StreamFrame(10), sc.StreamCreate(4000))
	}

	// Zero-size inputs degenerate to the fixed overheads, never negative.
	if sc.Energy(0, false) <= 0 || sc.StreamFrame(0) <= 0 {
		t.Error("zero-size costs must still charge the request envelope")
	}
}
