package simtime

import "time"

// ServeCosts are the service-time surrogates for the serving tier
// (internal/serve), the same way OpCosts are surrogates for the engine's
// inner loops. The load harness (internal/loadgen) uses them to run
// cluster-scale what-if experiments in virtual time: the simulator charges
// each simulated request the modeled duration below instead of running the
// real engine, so a 10k-request trace that would take hours of wall time
// replays in milliseconds — deterministically.
//
// The constants are calibrated against this repository's own committed
// serving benchmarks on the development box (1 CPU, subdivision level 2;
// BENCH_serve.json and BENCH_stream.json):
//
//   - cold prepare (surface + octrees + Born) measured 717 ms at 2500
//     atoms  → ~287 µs/atom;
//   - warm E_pol re-evaluation measured 21.4 ms at 2500 atoms
//     → ~8.5 µs/atom;
//   - one batched sweep pose (compose + per-pose prepare + eval) measured
//     11.44 s / 64 poses on a 1250-atom complex → ~143 µs/atom·pose;
//   - stream session create measured 659 ms at 4000 atoms → ~165 µs/atom;
//   - incremental stream frame measured 43.5 ms at 10 moved atoms
//     → ~4.5 ms base + ~3.9 ms per moved atom.
//
// Linear-in-atoms surrogates are deliberately crude — the real costs carry
// an O(n log n) tree factor — but over the one order of magnitude of
// molecule sizes a trace spans they stay within the fidelity the control
// experiments need: the tuner reacts to queueing, not to the third
// significant digit of service time.
type ServeCosts struct {
	// ColdBuildPerAtomSec is the prepared-cache miss path: surface
	// sampling, octree construction and the Born phase, per atom.
	ColdBuildPerAtomSec float64
	// WarmEvalPerAtomSec is the cache-hit path: one E_pol evaluation over
	// an already-prepared problem, per atom.
	WarmEvalPerAtomSec float64
	// PosePerAtomSec is one pose inside a coalesced sweep batch (composed
	// complex surface + per-pose octree/Born rebuild + eval), per atom of
	// the complex.
	PosePerAtomSec float64
	// SessionCreatePerAtomSec is a /v1/stream session create (full prepare
	// plus the incremental engine's bookkeeping), per atom.
	SessionCreatePerAtomSec float64
	// FrameBaseSec + FramePerMoverSec model an incremental frame: a fixed
	// neighborhood-repair floor plus a per-moved-atom term.
	FrameBaseSec     float64
	FramePerMoverSec float64
	// RequestOverheadSec is the per-request envelope outside evaluation:
	// JSON decode/encode, admission, queue handoff.
	RequestOverheadSec float64
	// BatchOverheadSec is charged once per sweep-batch flush (timer fire,
	// shared-prepare bookkeeping, composer setup).
	BatchOverheadSec float64
}

// DefaultServeCosts returns the calibrated defaults described above.
func DefaultServeCosts() ServeCosts {
	return ServeCosts{
		ColdBuildPerAtomSec:     287e-6,
		WarmEvalPerAtomSec:      8.5e-6,
		PosePerAtomSec:          143e-6,
		SessionCreatePerAtomSec: 165e-6,
		FrameBaseSec:            4.5e-3,
		FramePerMoverSec:        3.9e-3,
		RequestOverheadSec:      0.3e-3,
		BatchOverheadSec:        0.1e-3,
	}
}

// dur converts modeled seconds to a time.Duration, flooring at zero.
func dur(sec float64) time.Duration {
	if sec <= 0 {
		return 0
	}
	return time.Duration(sec * float64(time.Second))
}

// Energy returns the modeled service time of one /v1/energy evaluation.
// cold selects the cache-miss path (full prepare before the evaluation).
func (sc ServeCosts) Energy(atoms int, cold bool) time.Duration {
	s := sc.RequestOverheadSec + sc.WarmEvalPerAtomSec*float64(atoms)
	if cold {
		s += sc.ColdBuildPerAtomSec * float64(atoms)
	}
	return dur(s)
}

// SweepBatch returns the modeled service time of one coalesced sweep
// flush: the shared receptor+ligand prepare (cold or cached), then every
// pose's composed-complex evaluation. atoms is the complex size, poses the
// total pose count across the batch's waiters.
func (sc ServeCosts) SweepBatch(atoms, poses int, cold bool) time.Duration {
	s := sc.BatchOverheadSec + sc.PosePerAtomSec*float64(atoms)*float64(poses)
	if cold {
		s += sc.ColdBuildPerAtomSec * float64(atoms)
	} else {
		s += sc.WarmEvalPerAtomSec * float64(atoms)
	}
	return dur(s)
}

// StreamCreate returns the modeled service time of a stream-session
// create (always a full prepare — sessions own their state).
func (sc ServeCosts) StreamCreate(atoms int) time.Duration {
	return dur(sc.RequestOverheadSec + sc.SessionCreatePerAtomSec*float64(atoms))
}

// StreamFrame returns the modeled service time of one incremental frame
// moving `movers` atoms.
func (sc ServeCosts) StreamFrame(movers int) time.Duration {
	return dur(sc.RequestOverheadSec + sc.FrameBaseSec + sc.FramePerMoverSec*float64(movers))
}
