package simtime

import (
	"math"
	"testing"

	"octgb/internal/core"
)

func TestNICContentionScalesComm(t *testing.T) {
	m := Lonestar4()
	// 12 ranks per node move 6× the hybrid's 2-ranks-per-node volume
	// through the shared port; the t_w term must scale accordingly.
	c2 := m.CollectiveCost("allreduce", 1<<20, 144, 2)
	c12 := m.CollectiveCost("allreduce", 1<<20, 144, 12)
	if c12 <= c2 {
		t.Fatalf("contention not modeled: %v vs %v", c2, c12)
	}
	ratio := (c12 - m.TsSec*8) / (c2 - m.TsSec*8)
	if math.Abs(ratio-6) > 0.2 {
		t.Errorf("contention ratio %v, want ≈6", ratio)
	}
}

func TestHybridOverheadInRange(t *testing.T) {
	m := Lonestar4()
	// The paper reports cilk overheads that are noticeable but bounded;
	// the modeled multiplier must stay in a credible band.
	if m.HybridOverhead < 1.0 || m.HybridOverhead > 1.5 {
		t.Errorf("HybridOverhead %v out of band", m.HybridOverhead)
	}
}

func TestApproxMathFactor(t *testing.T) {
	if ApproxMathFactor != 1.42 {
		t.Errorf("ApproxMathFactor = %v, paper reports 1.42", ApproxMathFactor)
	}
}

func TestBarrierCheapestCollective(t *testing.T) {
	m := Lonestar4()
	b := m.CollectiveCost("barrier", 0, 16, 4)
	a := m.CollectiveCost("allreduce", 1000, 16, 4)
	bc := m.CollectiveCost("bcast", 1000, 16, 4)
	if b >= a || b >= bc {
		t.Errorf("barrier %v not cheapest (allreduce %v, bcast %v)", b, a, bc)
	}
}

func TestMemoryPenaltyMonotoneInBytes(t *testing.T) {
	m := Lonestar4()
	prev := 0.0
	for _, mb := range []int64{1, 10, 100, 1000, 4000} {
		p := m.MemoryPenalty(mb<<20, 12)
		if p < prev {
			t.Fatalf("penalty not monotone at %d MB: %v < %v", mb, p, prev)
		}
		prev = p
	}
}

func TestCostsBornVsEpolDominance(t *testing.T) {
	oc := DefaultOpCosts()
	// Transcendental-heavy entries must cost more than the plain ones.
	if oc.EpolNearPairSec <= oc.BornNearPairSec {
		t.Error("energy pairs should cost more than Born pairs")
	}
	if oc.PairOBCSec <= oc.PairHCTSec {
		t.Error("OBC pair should cost more than HCT")
	}
	if oc.PairVolR6Sec >= oc.PairHCTSec {
		t.Error("volume-r6 pair (no transcendental) should be cheaper than HCT")
	}
}

func TestWorkLinearInCounters(t *testing.T) {
	oc := DefaultOpCosts()
	a := oc.EpolWork(core.Stats{NearPairs: 100})
	b := oc.EpolWork(core.Stats{NearPairs: 200})
	if math.Abs(b-2*a) > 1e-18 {
		t.Errorf("work not linear: %v vs %v", a, b)
	}
}
