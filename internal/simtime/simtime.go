// Package simtime is the virtual-time machine model that lets the benchmark
// harness regenerate the paper's cluster-scale figures on hardware we do
// not have (this repository is developed and tested on a single-core box;
// the paper used 12 × 12-core Westmere nodes on InfiniBand).
//
// The model never fabricates *results* — every engine executes the real
// algorithm on real data and produces the real energy. Only the *clock* is
// modeled: deterministic work counters from the treecode/baselines are
// converted to seconds with fixed per-operation costs, intra-node
// parallelism is turned into a makespan with the deterministic
// list-scheduling bound (sched.ListScheduleMakespan), and collectives are
// charged the t_s·log P + t_w·m costs of the paper's §IV-C analysis.
// Modeling constants are defined here in one place and documented.
package simtime

import (
	"math"

	"octgb/internal/core"
)

// Machine describes the modeled cluster node and interconnect. The default
// instance (Lonestar4) matches the paper's Table I.
type Machine struct {
	Name            string
	CoresPerNode    int
	SocketsPerNode  int
	CoreGHz         float64
	L3BytesPerSkt   int64 // shared L3 per socket
	RAMBytesPerNode int64
	// Interconnect α–β model (per collective): startup t_s and per-word
	// (float64) transfer time t_w.
	TsSec        float64
	TwSecPerWord float64
	// HybridOverhead models the paper's observed costs of multithreaded
	// ranks (§V-C and footnote 5): cilk-4.5.4 being less optimized than
	// MPI, no thread-affinity manager, and the cilk++/MPI interfacing
	// overhead — a multiplier on intra-rank compute when ThreadsPerRank
	// exceeds 1.
	HybridOverhead float64
	// StealOverheadSec is charged per spawned task to model scheduling.
	StealOverheadSec float64
}

// Lonestar4 returns the paper's Table I machine: 3.33 GHz hexa-core
// Westmere, 2 sockets × 6 cores, 12 MB L3 per socket, 24 GB/node, QDR
// InfiniBand (40 Gb/s ≈ 5 GB/s ⇒ 1.6 ns per 8-byte word, ~2 µs startup).
func Lonestar4() Machine {
	return Machine{
		Name:             "Lonestar4 (modeled)",
		CoresPerNode:     12,
		SocketsPerNode:   2,
		CoreGHz:          3.33,
		L3BytesPerSkt:    12 << 20,
		RAMBytesPerNode:  24 << 30,
		TsSec:            2e-6,
		TwSecPerWord:     1.6e-9,
		HybridOverhead:   1.20,
		StealOverheadSec: 2e-7,
	}
}

// OpCosts are the per-operation compute costs used to convert deterministic
// work counters into modeled seconds. They approximate instruction counts
// on the modeled 3.33 GHz Westmere core:
//
//   - a Born-integral near pair is ~15 flops with one division (no
//     transcendental): ~8 ns;
//   - an energy near pair has sqrt+exp: ~30 ns;
//   - a far-field (bin-pair) evaluation likewise has sqrt+exp: ~32 ns;
//   - a tree-node visit is pointer chasing + a distance: ~6 ns;
//   - a cutoff-pairwise GB-model pair (HCT/OBC/STILL descreening) has
//     division+exp or several divisions: ~35–55 ns depending on model;
//   - an nblist build step (cell hash + distance test) is ~7 ns.
type OpCosts struct {
	BornNearPairSec float64
	EpolNearPairSec float64
	FarEvalSec      float64
	NodeVisitSec    float64
	PairHCTSec      float64
	PairOBCSec      float64
	PairSTILLSec    float64
	PairVolR6Sec    float64
	NblistStepSec   float64
}

// DefaultOpCosts returns the calibrated defaults described above. With
// MathMode Approximate the engines scale the transcendental-heavy entries
// by ≈1/1.42, matching the paper's measured approximate-math speedup.
func DefaultOpCosts() OpCosts {
	return OpCosts{
		BornNearPairSec: 8e-9,
		EpolNearPairSec: 30e-9,
		FarEvalSec:      32e-9,
		NodeVisitSec:    6e-9,
		PairHCTSec:      40e-9,
		PairOBCSec:      55e-9,
		PairSTILLSec:    35e-9,
		PairVolR6Sec:    30e-9,
		NblistStepSec:   7e-9,
	}
}

// ApproxMathFactor is the speedup of approximate math on
// transcendental-dominated inner loops (paper §V-E: 1.42× on average).
const ApproxMathFactor = 1.42

// BornWork converts Born-phase counters to seconds.
func (oc OpCosts) BornWork(st core.Stats) float64 {
	return float64(st.NearPairs)*oc.BornNearPairSec +
		float64(st.FarEval)*oc.FarEvalSec +
		float64(st.NodesVisited)*oc.NodeVisitSec
}

// EpolWork converts energy-phase counters to seconds.
func (oc OpCosts) EpolWork(st core.Stats) float64 {
	return float64(st.NearPairs)*oc.EpolNearPairSec +
		float64(st.FarEval)*oc.FarEvalSec +
		float64(st.NodesVisited)*oc.NodeVisitSec
}

// CollectiveCost returns the modeled time of one collective over nranks
// ranks moving `words` float64 words per rank — the paper's
// t_s·log P + t_w·m·(P−1)/P form (Grama et al. Table 4.1, recursive
// doubling / ring hybrids). ranksPerNode models NIC contention: ranks on
// one node share a single network port, so a node with 12 single-threaded
// ranks moves 12 copies of the payload through the same link where the
// hybrid's 2 ranks move 2 — the mechanism behind the paper's observation
// that OCT_MPI's communication overhead exceeds OCT_MPI+CILK's (§V-B).
func (m Machine) CollectiveCost(kind string, words, nranks, ranksPerNode int) float64 {
	if nranks <= 1 {
		return 0
	}
	if ranksPerNode < 1 {
		ranksPerNode = 1
	}
	logP := math.Ceil(math.Log2(float64(nranks)))
	tw := m.TwSecPerWord * float64(ranksPerNode)
	switch kind {
	case "barrier":
		return m.TsSec * logP
	case "bcast":
		return m.TsSec*logP + tw*float64(words)*logP
	default: // allreduce, allreducemax, allgatherv
		frac := float64(nranks-1) / float64(nranks)
		return m.TsSec*logP + 2*tw*float64(words)*frac
	}
}

// AlgoCollectiveCost returns the modeled time of one collective under an
// explicit algorithm selection, matching what the cluster layer actually
// executes (cluster/collectives.go), stage by stage in the α–β model
// (t_s startup + t_w per word, Grama et al. Table 4.1):
//
//	topo=false — the root-star reference: the root serially collects P−1
//	contributions and sends P−1 replies, so every stage pays t_s + t_w·m
//	and the root is an O(P·m) bandwidth bottleneck.
//	topo=true — the topology-aware algorithms: dissemination barrier
//	(⌈log₂P⌉ rounds), recursive-doubling allreduce (⌊log₂P⌋ exchanges of
//	the full buffer, plus one fold out and one fold back when P is not a
//	power of two), ring allgatherv (P−1 startups but only m·(P−1)/P words
//	moved per rank), binomial-tree bcast (⌈log₂P⌉ hops).
//
// words is the payload m in float64 words — for allgatherv the TOTAL
// gathered length, for the others the buffer length. ranksPerNode models
// NIC contention exactly as in CollectiveCost.
func (m Machine) AlgoCollectiveCost(kind string, topo bool, words, nranks, ranksPerNode int) float64 {
	if nranks <= 1 {
		return 0
	}
	if ranksPerNode < 1 {
		ranksPerNode = 1
	}
	P := float64(nranks)
	mw := float64(words)
	tw := m.TwSecPerWord * float64(ranksPerNode)
	ceilLog := math.Ceil(math.Log2(P))
	floorLog := math.Floor(math.Log2(P))
	pow2 := math.Exp2(floorLog) == P

	if !topo {
		switch kind {
		case "barrier":
			return 2 * (P - 1) * m.TsSec
		case "allgatherv":
			// Gather P−1 segments (m words total across them), then send
			// the full m-word result to each of the P−1 workers.
			return 2*(P-1)*m.TsSec + tw*mw + (P-1)*tw*mw
		default: // allreduce, allreducemax, bcast: full round trip at the root
			return 2 * (P - 1) * (m.TsSec + tw*mw)
		}
	}
	switch kind {
	case "barrier":
		return ceilLog * m.TsSec
	case "bcast":
		return ceilLog * (m.TsSec + tw*mw)
	case "allgatherv":
		return (P-1)*m.TsSec + tw*mw*(P-1)/P
	default: // allreduce, allreducemax: recursive doubling
		c := floorLog * (m.TsSec + tw*mw)
		if !pow2 {
			c += 2 * (m.TsSec + tw*mw) // pre/post fold
		}
		return c
	}
}

// MemoryPenalty models the cache/memory-pressure slowdown the paper's
// §IV-B argues makes pure-MPI replication lose to the hybrid for large
// inputs. The per-node working set is bytesPerRank × ranksPerNode:
//
//   - while it fits in the node's total L3, no penalty;
//   - beyond L3 the penalty grows logarithmically (working sets stream
//     from DRAM; each doubling adds a fixed miss-cost share, +12 %);
//   - beyond node RAM the run pages: steep linear penalty.
func (m Machine) MemoryPenalty(bytesPerRank int64, ranksPerNode int) float64 {
	total := float64(bytesPerRank) * float64(ranksPerNode)
	l3 := float64(m.L3BytesPerSkt * int64(m.SocketsPerNode))
	if total <= l3 {
		return 1
	}
	p := 1 + 0.12*math.Log2(total/l3)
	ram := float64(m.RAMBytesPerNode)
	if total > ram {
		p *= 1 + 9*(total/ram-1) // paging cliff
	}
	return p
}

// Clocks tracks per-rank virtual time for one simulated run.
type Clocks struct {
	T []float64
}

// NewClocks returns zeroed clocks for n ranks.
func NewClocks(n int) *Clocks { return &Clocks{T: make([]float64, n)} }

// Advance adds dt seconds of compute to one rank's clock.
func (c *Clocks) Advance(rank int, dt float64) { c.T[rank] += dt }

// SyncCollective rendezvouses all ranks (everyone waits for the slowest)
// and then charges the collective cost to all of them.
func (c *Clocks) SyncCollective(m Machine, kind string, words, ranksPerNode int) {
	var max float64
	for _, t := range c.T {
		if t > max {
			max = t
		}
	}
	after := max + m.CollectiveCost(kind, words, len(c.T), ranksPerNode)
	for i := range c.T {
		c.T[i] = after
	}
}

// SyncCollectiveAlgo is SyncCollective with an explicit algorithm
// selection and an overlap credit: overlapSec seconds of independent
// compute (already charged to the rank clocks elsewhere) hide the same
// amount of collective time, modeling a non-blocking operation waited on
// after that compute finishes.
func (c *Clocks) SyncCollectiveAlgo(m Machine, kind string, topo bool, words, ranksPerNode int, overlapSec float64) {
	cost := m.AlgoCollectiveCost(kind, topo, words, len(c.T), ranksPerNode) - overlapSec
	if cost < 0 {
		cost = 0
	}
	var max float64
	for _, t := range c.T {
		if t > max {
			max = t
		}
	}
	after := max + cost
	for i := range c.T {
		c.T[i] = after
	}
}

// Elapsed returns the current makespan: the slowest rank's clock.
func (c *Clocks) Elapsed() float64 {
	var max float64
	for _, t := range c.T {
		if t > max {
			max = t
		}
	}
	return max
}
