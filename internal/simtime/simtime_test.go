package simtime

import (
	"math"
	"testing"

	"octgb/internal/core"
)

func TestLonestar4Sanity(t *testing.T) {
	m := Lonestar4()
	if m.CoresPerNode != 12 || m.SocketsPerNode != 2 {
		t.Errorf("node shape: %+v", m)
	}
	if m.RAMBytesPerNode != 24<<30 {
		t.Errorf("RAM: %d", m.RAMBytesPerNode)
	}
}

func TestCollectiveCostGrowsWithRanksAndWords(t *testing.T) {
	m := Lonestar4()
	if m.CollectiveCost("allreduce", 1000, 1, 1) != 0 {
		t.Error("single rank should communicate nothing")
	}
	c2 := m.CollectiveCost("allreduce", 1000, 2, 2)
	c16 := m.CollectiveCost("allreduce", 1000, 16, 2)
	if c16 <= c2 {
		t.Errorf("cost did not grow with ranks: %v vs %v", c2, c16)
	}
	w1 := m.CollectiveCost("allreduce", 1000, 8, 2)
	w2 := m.CollectiveCost("allreduce", 1000000, 8, 2)
	if w2 <= w1 {
		t.Errorf("cost did not grow with words: %v vs %v", w1, w2)
	}
	if b := m.CollectiveCost("barrier", 0, 8, 2); b <= 0 || b >= w1 {
		t.Errorf("barrier cost %v implausible", b)
	}
}

func TestAlgoCollectiveCost(t *testing.T) {
	m := Lonestar4()
	for _, kind := range []string{"barrier", "allreduce", "allreducemax", "allgatherv", "bcast"} {
		if m.AlgoCollectiveCost(kind, true, 1000, 1, 1) != 0 {
			t.Errorf("%s: single rank should be free", kind)
		}
		// Topo must beat the star at scale on large buffers — the claim
		// the whole layer exists for (log-depth vs. O(P·m) at the root).
		for _, P := range []int{8, 16, 64} {
			star := m.AlgoCollectiveCost(kind, false, 1<<16, P, 2)
			topo := m.AlgoCollectiveCost(kind, true, 1<<16, P, 2)
			if topo*2 > star {
				t.Errorf("%s P=%d: topo %v not ≥2x faster than star %v", kind, P, topo, star)
			}
		}
	}
	// Non-power-of-two allreduce pays the pre/post fold on top of the
	// power-of-two exchange.
	pow2 := m.AlgoCollectiveCost("allreduce", true, 1000, 8, 1)
	nonPow2 := m.AlgoCollectiveCost("allreduce", true, 1000, 9, 1)
	if nonPow2 <= pow2 {
		t.Errorf("non-pow2 fold not charged: P=9 %v vs P=8 %v", nonPow2, pow2)
	}
	// Ring allgatherv is bandwidth-optimal: the per-word cost tends to
	// t_w·m (not t_w·m·log P) as P grows.
	g8 := m.AlgoCollectiveCost("allgatherv", true, 1<<20, 8, 1)
	g64 := m.AlgoCollectiveCost("allgatherv", true, 1<<20, 64, 1)
	if g64 > 1.2*g8 {
		t.Errorf("ring allgatherv not bandwidth-bound: P=64 %v vs P=8 %v", g64, g8)
	}
}

func TestSyncCollectiveAlgoOverlapCredit(t *testing.T) {
	m := Lonestar4()
	full := NewClocks(4)
	full.SyncCollectiveAlgo(m, "allgatherv", true, 1<<16, 1, 0)
	part := NewClocks(4)
	part.SyncCollectiveAlgo(m, "allgatherv", true, 1<<16, 1, full.Elapsed()/2)
	if e := math.Abs(part.Elapsed() - full.Elapsed()/2); e > 1e-15 {
		t.Errorf("overlap credit: %v vs %v", part.Elapsed(), full.Elapsed()/2)
	}
	over := NewClocks(4)
	over.SyncCollectiveAlgo(m, "allgatherv", true, 1<<16, 1, 10*full.Elapsed())
	if over.Elapsed() != 0 {
		t.Errorf("over-credit should clamp to zero, got %v", over.Elapsed())
	}
}

func TestMemoryPenaltyRegimes(t *testing.T) {
	m := Lonestar4()
	// Fits in L3: no penalty.
	if p := m.MemoryPenalty(1<<20, 12); p != 1 {
		t.Errorf("in-cache penalty %v", p)
	}
	// DRAM regime: mild, monotone in ranks-per-node (the paper's
	// replication argument: 12 ranks × same data worse than 2 ranks).
	p2 := m.MemoryPenalty(700<<20, 2)
	p12 := m.MemoryPenalty(700<<20, 12)
	if !(1 < p2 && p2 < p12) {
		t.Errorf("replication penalties: p2=%v p12=%v", p2, p12)
	}
	if p12 > 3 {
		t.Errorf("DRAM penalty %v unreasonably steep", p12)
	}
	// Paging cliff beyond 24 GB/node.
	pg := m.MemoryPenalty(3<<30, 12) // 36 GB total
	if pg < 3 {
		t.Errorf("paging penalty %v too soft", pg)
	}
}

func TestOpCostsWorkConversion(t *testing.T) {
	oc := DefaultOpCosts()
	st := core.Stats{NearPairs: 1e6, FarEval: 1e5, NodesVisited: 1e5}
	b := oc.BornWork(st)
	e := oc.EpolWork(st)
	if b <= 0 || e <= 0 {
		t.Fatal("non-positive work")
	}
	// Energy pairs are costlier (sqrt+exp) than Born pairs.
	if e <= b {
		t.Errorf("EpolWork %v should exceed BornWork %v for same counters", e, b)
	}
	if oc.BornWork(core.Stats{}) != 0 {
		t.Error("zero stats should cost zero")
	}
}

func TestClocks(t *testing.T) {
	m := Lonestar4()
	c := NewClocks(4)
	c.Advance(0, 1.0)
	c.Advance(2, 3.0)
	if c.Elapsed() != 3.0 {
		t.Errorf("elapsed %v", c.Elapsed())
	}
	c.SyncCollective(m, "allreduce", 100, 2)
	// All clocks equal, strictly after the slowest rank.
	want := 3.0 + m.CollectiveCost("allreduce", 100, 4, 2)
	for i, v := range c.T {
		if math.Abs(v-want) > 1e-15 {
			t.Errorf("clock %d = %v, want %v", i, v, want)
		}
	}
}

func TestSyncCollectiveSingleRankFree(t *testing.T) {
	c := NewClocks(1)
	c.Advance(0, 2)
	c.SyncCollective(Lonestar4(), "allreduce", 1e6, 12)
	if c.Elapsed() != 2 {
		t.Errorf("single-rank collective charged time: %v", c.Elapsed())
	}
}
