// Capsid: the paper's large-molecule scenario (§V-F) — a hollow virus
// shell like the Cucumber Mosaic Virus (509,640 atoms), far beyond what
// the quadratic packages can process. This example runs a scaled capsid
// through all three octree engines, verifies they agree, and prints the
// virtual-time projection on the modeled 12-node cluster, reproducing the
// structure of the paper's Figure 11 on one machine.
//
// Run with: go run ./examples/capsid              (default 25,000 atoms)
//
//	go run ./examples/capsid -atoms 509640   (the full CMV analogue)
package main

import (
	"flag"
	"fmt"

	"octgb/internal/engine"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

func main() {
	atoms := flag.Int("atoms", 25000, "capsid atom count (CMV = 509640)")
	flag.Parse()

	mol := molecule.GenerateCapsid("capsid", *atoms, 20, 424242)
	pr := engine.NewProblem(mol, surface.Options{SubdivLevel: 1, Degree: 1})
	fmt.Printf("capsid: %d atoms, %d surface q-points\n\n", mol.N(), len(pr.QPts))

	mach := simtime.Lonestar4()
	oc := simtime.DefaultOpCosts()

	type result struct {
		name   string
		energy float64
		t12    float64
		t144   float64
	}
	var rows []result

	cilk := engine.BuildSimModel(pr, engine.OctCilk, engine.Options{}, oc)
	rows = append(rows, result{"OCT_CILK", cilk.Energy, cilk.Time(1, 12, mach, -1).TotalSec, 0})

	mpi := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{}, oc)
	rows = append(rows, result{"OCT_MPI", mpi.Energy,
		mpi.Time(12, 1, mach, -1).TotalSec, mpi.Time(144, 1, mach, -1).TotalSec})

	hyb := engine.BuildSimModel(pr, engine.OctMPICilk, engine.Options{}, oc)
	rows = append(rows, result{"OCT_MPI+CILK", hyb.Energy,
		hyb.Time(2, 6, mach, -1).TotalSec, hyb.Time(24, 6, mach, -1).TotalSec})

	fmt.Printf("%-14s  %-16s  %-14s  %-14s\n", "engine", "E_pol (kcal/mol)", "12 cores (sim)", "144 cores (sim)")
	for _, r := range rows {
		t144 := "-"
		if r.t144 > 0 {
			t144 = fmt.Sprintf("%.3fs", r.t144)
		}
		fmt.Printf("%-14s  %-16.4g  %-14s  %-14s\n", r.name, r.energy, fmt.Sprintf("%.3fs", r.t12), t144)
	}

	// Engines must agree with each other (they share the same physics).
	ref := rows[1].energy
	for _, r := range rows {
		d := 100 * (r.energy - ref) / ref
		if d < 0 {
			d = -d
		}
		if d > 2 {
			fmt.Printf("WARNING: %s deviates %.2f%% from OCT_MPI\n", r.name, d)
		}
	}
	fmt.Println("\nAll three engines handle the shell; the quadratic packages (Tinker, GBr6)")
	fmt.Println("run out of memory at this size, per the paper's §V-D.")
}
