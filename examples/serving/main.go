// Serving: the resident evaluation service. A docking screen evaluates
// thousands of requests against the same receptor; running the engine
// behind a server amortizes the preprocessing (surface, octrees, Born
// radii) across the request stream instead of repeating it per call.
//
// This example starts the service in-process on a loopback port, then acts
// as its own client: a cold request (cache miss, pays full preprocessing),
// a warm repeat (cache hit, pays only the E_pol evaluation), and a batched
// pose sweep that scores eight candidate poses in one engine run. It
// finishes with the server's own accounting from GET /stats.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"time"

	"octgb/internal/molecule"
	"octgb/internal/serve"
)

func main() {
	s := serve.New(serve.Config{Addr: "127.0.0.1:0", Workers: 2, Threads: 2})
	if err := s.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()
	fmt.Printf("serving on %s\n\n", base)

	// Cold: the first request for a molecule builds its prepared problem.
	mol := molecule.GenerateProtein("target", 2500, 1)
	var cold serve.EnergyResponse
	post(base+"/v1/energy", serve.EnergyRequest{Molecule: serve.FromMolecule(mol)}, &cold)
	fmt.Printf("cold: E_pol %.1f kcal/mol  cache=%s  surface %.0f ms + prepare %.0f ms + eval %.0f ms\n",
		cold.Energy, cold.Cache, cold.Timings.SurfaceMS, cold.Timings.PrepareMS, cold.Timings.EvalMS)

	// Warm: the repeat skips straight to the E_pol evaluation.
	var warm serve.EnergyResponse
	post(base+"/v1/energy", serve.EnergyRequest{Molecule: serve.FromMolecule(mol)}, &warm)
	fmt.Printf("warm: E_pol %.1f kcal/mol  cache=%s  eval %.0f ms\n\n",
		warm.Energy, warm.Cache, warm.Timings.EvalMS)

	// Batched pose sweep: one request scores a ring of candidate poses; the
	// receptor and ligand are prepared once and each pose's complex surface
	// is composed from the cached parts.
	rec := molecule.GenerateProtein("receptor", 1200, 11)
	lig := molecule.GenerateProtein("ligand", 200, 12)
	r := 0.6 * rec.Bounds().HalfDiagonal()
	req := serve.SweepRequest{Receptor: ptr(serve.FromMolecule(rec)), Ligand: serve.FromMolecule(lig)}
	for i := 0; i < 8; i++ {
		a := 2 * math.Pi * float64(i) / 8
		req.Poses = append(req.Poses, serve.PoseJSON{T: [3]float64{r * math.Cos(a), r * math.Sin(a), 0}})
	}
	var sw serve.SweepResponse
	post(base+"/v1/sweep", req, &sw)
	best := 0
	for i, d := range sw.Deltas {
		if d < sw.Deltas[best] {
			best = i
		}
	}
	fmt.Printf("sweep: %d poses in one batch (cache %s)\n", sw.Poses, sw.Cache)
	fmt.Printf("       best pose %d: ΔE_pol %.1f kcal/mol\n\n", best, sw.Deltas[best])

	// The server's own accounting.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st serve.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: %d requests, cache %d build / %d hit, %d MiB resident, %d E_pol evals\n",
		st.Requests.Completed, st.Cache.Builds, st.Cache.Hits, st.Cache.Bytes>>20, st.Timings.Evals)
}

func post(url string, req, out any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: HTTP %d %s %s", url, resp.StatusCode, e.Error, e.Detail)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func ptr[T any](v T) *T { return &v }
