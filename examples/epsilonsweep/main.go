// Epsilon sweep: the library's space-independent speed–accuracy tradeoff
// (paper §I and Figure 10). The approximation parameters ε can be tuned
// per run without rebuilding any data structure — unlike cutoff-based
// nonbonded lists, whose memory grows cubically with the cutoff.
//
// This example sweeps the E_pol ε with the Born ε fixed at 0.9 and prints
// the error against the exact reference alongside the measured work.
//
// Run with: go run ./examples/epsilonsweep
package main

import (
	"fmt"
	"log"
	"math"

	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

func main() {
	mol := molecule.GenerateProtein("sweep", 5000, 21)
	pr := engine.NewProblem(mol, surface.Default())
	fmt.Printf("molecule: %d atoms, %d q-points\n", mol.N(), len(pr.QPts))

	// Exact reference.
	R := gb.BornRadiiR6(mol, pr.QPts)
	exact := gb.EpolNaive(mol, R, gb.Exact)
	fmt.Printf("exact E_pol: %.3f kcal/mol\n\n", exact)

	// Build the Born phase once (ε fixed at 0.9), then sweep the energy ε
	// — the octrees and Born radii are reused across the whole sweep.
	base := engine.BuildSimModel(pr, engine.OctMPICilk,
		engine.Options{BornEps: 0.9, EpolEps: 0.9}, simtime.DefaultOpCosts())
	mach := simtime.Lonestar4()

	fmt.Printf("%-6s  %-12s  %-9s  %-12s  %-12s\n", "ε", "E_pol", "err %", "near pairs", "modeled 12-core time")
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.5, 3.0} {
		sm := base.WithEpolEps(eps)
		t := sm.Time(2, 6, mach, -1)
		errPct := 100 * math.Abs(sm.Energy-exact) / math.Abs(exact)
		fmt.Printf("%-6.2g  %-12.3f  %-9.4f  %-12d  %.4fs\n",
			eps, sm.Energy, errPct, sm.EpolStats.NearPairs, t.TotalSec)
	}
	fmt.Println("\nLarger ε ⇒ fewer exact pairs, faster, larger error — and no data-structure rebuild.")

	// Sanity: the paper's operating point stays within ~1 % of exact.
	op := base.WithEpolEps(0.9)
	if e := math.Abs(op.Energy-exact) / math.Abs(exact); e > 0.05 {
		log.Fatalf("unexpectedly large error at ε=0.9: %.2f%%", 100*e)
	}
}
