// Docking pose sweep: the paper's §IV-C motivation for treating octree
// construction as a preprocessing step. In drug design a ligand is placed
// at thousands of candidate poses against a receptor; the receptor's
// octree never changes and the ligand's octree is moved rigidly, so only
// the energy needs recomputation per pose.
//
// This example scores a ligand at a ring of candidate poses around a
// receptor and reports the best (lowest-energy) pose. The polarization
// energy of the complex is compared to the sum of the parts — the
// polarization component of the binding energy.
//
// Run with: go run ./examples/docking
package main

import (
	"fmt"
	"log"
	"math"

	"octgb/internal/engine"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

func main() {
	receptor := molecule.GenerateProtein("receptor", 4000, 11)
	ligand := molecule.GenerateProtein("ligand", 300, 12)

	// Isolated energies (computed once).
	eRec := score(receptor)
	eLig := score(ligand)
	fmt.Printf("receptor: %d atoms, E_pol %.1f kcal/mol\n", receptor.N(), eRec)
	fmt.Printf("ligand:   %d atoms, E_pol %.1f kcal/mol\n", ligand.N(), eLig)

	// Sweep candidate poses: rotate the approach direction around the
	// receptor and slide to contact.
	rb := receptor.Bounds()
	radius := rb.HalfDiagonal() + 8
	bestPose, bestDelta := -1, math.Inf(1)
	const poses = 12
	for p := 0; p < poses; p++ {
		angle := 2 * math.Pi * float64(p) / poses
		// Rigid transform: rotate the ligand, then translate it to the
		// contact point on the receptor's flank.
		tr := geom.RotationAxisAngle(geom.V(0, 0, 1), angle)
		tr.T = geom.V(radius*math.Cos(angle), radius*math.Sin(angle), 0).Add(rb.Center())
		posed := ligand.Transform(tr)

		cx := molecule.Merge(fmt.Sprintf("pose%02d", p), receptor, posed)
		eCx := score(cx)
		delta := eCx - eRec - eLig // polarization part of ΔG_bind
		marker := ""
		if delta < bestDelta {
			bestDelta, bestPose = delta, p
			marker = "  <- best so far"
		}
		fmt.Printf("pose %2d (θ=%5.1f°): E_pol(complex) %.1f, ΔE_pol %+.2f kcal/mol%s\n",
			p, angle*180/math.Pi, eCx, delta, marker)
	}
	fmt.Printf("\nbest pose: %d (ΔE_pol = %+.2f kcal/mol)\n", bestPose, bestDelta)
}

// score computes E_pol with the hybrid engine at the paper's ε = 0.9/0.9.
func score(mol *molecule.Molecule) float64 {
	pr := engine.NewProblem(mol, surface.Default())
	rep, err := engine.RunReal(pr, engine.OctMPICilk, engine.Options{Ranks: 2, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	return rep.Energy
}
