// Quickstart: compute the GB polarization energy of a molecule with the
// hybrid octree engine and compare it against the exact reference — the
// minimal end-to-end use of the public pipeline:
//
//	molecule → surface quadrature → Problem → engine → E_pol
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"octgb/internal/engine"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

func main() {
	// 1. A molecule: 3,000-atom synthetic protein (use molecule.ReadPQR to
	//    load your own).
	mol := molecule.GenerateProtein("quickstart", 3000, 7)
	fmt.Printf("molecule %s: %d atoms, net charge %+.1f\n", mol.Name, mol.N(), mol.TotalCharge())

	// 2. Sample the molecular surface (Gaussian quadrature points with
	//    outward normals — the input of the r⁶ Born-radius integral).
	pr := engine.NewProblem(mol, surface.Default())
	fmt.Printf("surface: %d quadrature points, %.0f Å² exposed area\n",
		len(pr.QPts), surface.TotalArea(pr.QPts))

	// 3. Run the hybrid distributed-shared-memory engine (2 ranks × 2
	//    threads) at the paper's operating point ε = 0.9 / 0.9.
	rep, err := engine.RunReal(pr, engine.OctMPICilk, engine.Options{
		Ranks:   2,
		Threads: 2,
		BornEps: 0.9,
		EpolEps: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OCT_MPI+CILK: E_pol = %.4f kcal/mol (wall %v)\n", rep.Energy, rep.Wall)

	// 4. Compare against the exact O(N·m + N²) reference.
	exact, err := engine.RunReal(pr, engine.Naive, engine.Options{Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	errPct := 100 * (rep.Energy - exact.Energy) / exact.Energy
	fmt.Printf("naive exact:  E_pol = %.4f kcal/mol (wall %v)\n", exact.Energy, exact.Wall)
	fmt.Printf("treecode error: %.3f%%  |  exact pair work saved: %.1f%%\n",
		errPct, 100*(1-float64(rep.EpolStats.NearPairs)/float64(exact.EpolStats.NearPairs)))
}
