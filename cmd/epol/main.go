// Command epol computes the GB polarization energy of a molecule with any
// of the library's engines.
//
// Usage:
//
//	epol -gen 5000                           # synthetic protein, hybrid engine
//	epol -in molecule.pqr -engine mpi -ranks 8
//	epol -capsid 50000 -engine cilk -threads 4 -borneps 0.5
//	epol -gen 2000 -engine naive             # exact reference
//	epol -gen 20000 -sim -cores 144          # virtual-time estimate as well
package main

import (
	"flag"
	"fmt"
	"os"

	"octgb/internal/core"
	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

func main() {
	var (
		in      = flag.String("in", "", "input molecule in PQR format")
		gen     = flag.Int("gen", 0, "generate a synthetic protein with this many atoms")
		capsid  = flag.Int("capsid", 0, "generate a synthetic capsid shell with this many atoms")
		seed    = flag.Int64("seed", 1, "generator seed")
		eng     = flag.String("engine", "hybrid", "engine: cilk | mpi | hybrid | naive")
		ranks   = flag.Int("ranks", 2, "number of ranks (mpi/hybrid)")
		threads = flag.Int("threads", 2, "threads per rank (cilk/hybrid/naive)")
		bornEps = flag.Float64("borneps", 0.9, "Born-radius approximation parameter ε")
		epolEps = flag.Float64("epoleps", 0.9, "energy approximation parameter ε")
		approx  = flag.Bool("approx", false, "use approximate (fast) sqrt/exp")
		prec    = flag.String("precision", "f64", "kernel storage tier: f64 | f32 (~1e-6 relative error, half the memory)")
		subdiv  = flag.Int("subdiv", 1, "surface icosphere subdivision level")
		degree  = flag.Int("degree", 1, "Dunavant quadrature degree (1-5)")
		sim     = flag.Bool("sim", false, "also report the virtual-time estimate on the modeled cluster")
		cores   = flag.Int("cores", 12, "modeled core count for -sim")
		radii   = flag.Bool("radii", false, "print per-atom Born radii")
	)
	flag.Parse()

	mol, err := loadMolecule(*in, *gen, *capsid, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "epol:", err)
		os.Exit(1)
	}
	fmt.Printf("molecule: %s (%d atoms, total charge %.2f)\n", mol.Name, mol.N(), mol.TotalCharge())

	pr := engine.NewProblem(mol, surface.Options{SubdivLevel: *subdiv, Degree: *degree})
	fmt.Printf("surface:  %d quadrature points (%.0f Å² exposed)\n", len(pr.QPts), surface.TotalArea(pr.QPts))

	kind, err := parseKind(*eng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "epol:", err)
		os.Exit(1)
	}
	opts := engine.Options{
		Ranks: *ranks, Threads: *threads,
		BornEps: *bornEps, EpolEps: *epolEps,
	}
	if *approx {
		opts.Math = gb.Approximate
	}
	p, ok := core.ParsePrecision(*prec)
	if !ok {
		fmt.Fprintf(os.Stderr, "epol: unknown -precision %q (want f64 or f32)\n", *prec)
		os.Exit(1)
	}
	opts.Precision = p

	rep, err := engine.RunReal(pr, kind, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "epol:", err)
		os.Exit(1)
	}
	fmt.Printf("engine:   %s (ranks=%d threads=%d εB=%.2g εE=%.2g)\n", kind, *ranks, *threads, *bornEps, *epolEps)
	fmt.Printf("E_pol:    %.6g kcal/mol\n", rep.Energy)
	fmt.Printf("work:     Born %d near pairs / %d far evals; E_pol %d near pairs / %d far evals\n",
		rep.BornStats.NearPairs, rep.BornStats.FarEval, rep.EpolStats.NearPairs, rep.EpolStats.FarEval)
	fmt.Printf("wall:     %v\n", rep.Wall)
	if p := rep.Phases; p.Born > 0 {
		fmt.Printf("phases:   born %v, push %v, epol %v, comm %v\n", p.Born, p.Push, p.Epol, p.Comm)
	}
	if rep.Sched.Executed > 0 {
		fmt.Printf("sched:    %d tasks, %d steals\n", rep.Sched.Executed, rep.Sched.Steals)
	}

	if *sim {
		sm := engine.BuildSimModel(pr, kind, opts, simtime.DefaultOpCosts())
		m := simtime.Lonestar4()
		var t engine.SimTiming
		switch kind {
		case engine.OctMPICilk:
			t = sm.Time(*cores/6, 6, m, -1)
		case engine.OctMPI:
			t = sm.Time(*cores, 1, m, -1)
		default:
			t = sm.Time(1, *cores, m, -1)
		}
		fmt.Printf("sim:      %.4gs on %d modeled cores (compute %.4gs, comm %.4gs, mem penalty %.2f)\n",
			t.TotalSec, t.Cores, t.ComputeSec, t.CommSec, t.MemPenalty)
	}

	if *radii {
		for i, r := range rep.BornRadii {
			fmt.Printf("R[%d] = %.4f\n", i, r)
		}
	}
}

func loadMolecule(in string, gen, capsid int, seed int64) (*molecule.Molecule, error) {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return molecule.ReadPQR(f, in)
	case capsid > 0:
		return molecule.GenerateCapsid(fmt.Sprintf("capsid_%d", capsid), capsid, 20, seed), nil
	case gen > 0:
		return molecule.GenerateProtein(fmt.Sprintf("protein_%d", gen), gen, seed), nil
	default:
		return molecule.GenerateProtein("protein_2000", 2000, seed), nil
	}
}

func parseKind(s string) (engine.Kind, error) {
	switch s {
	case "cilk":
		return engine.OctCilk, nil
	case "mpi":
		return engine.OctMPI, nil
	case "hybrid":
		return engine.OctMPICilk, nil
	case "naive":
		return engine.Naive, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want cilk|mpi|hybrid|naive)", s)
}
