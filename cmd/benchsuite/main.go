// Command benchsuite regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for recorded outputs).
//
// Usage:
//
//	benchsuite -fig all                      # everything, laptop-scale defaults
//	benchsuite -fig 5,6 -scale 1             # full-size BTV scalability
//	benchsuite -fig 8 -suite 84              # full ZDock-like suite
//	benchsuite -fig ablations                # design-choice ablations
//	benchsuite -fig env,packages             # Tables I and II
//	benchsuite -fig 11 -scale 1 -exact       # full CMV with naive reference
//	benchsuite -csv out/                     # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"octgb/internal/bench"
	"octgb/internal/gb"
)

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated figures: env,packages,5,6,7,8,9,10,11,ablations or 'all'")
		scale   = flag.Float64("scale", 0.1, "size scale for the CMV/BTV stand-ins (1 = paper's full sizes)")
		suite   = flag.Int("suite", 21, "number of ZDock-like suite molecules (paper: 84)")
		runs    = flag.Int("runs", 20, "jittered repetitions for figure 6")
		exact   = flag.Bool("exact", false, "force naive exact reference even on very large molecules")
		approx  = flag.Bool("approx", false, "use approximate math in the octree engines (figures 8/9/11)")
		csvDir  = flag.String("csv", "", "directory to also write per-figure CSV files into")
		quiet   = flag.Bool("q", false, "suppress progress logging")
		maxAtom = flag.Int("maxatoms", 0, "filter suite molecules above this atom count (0 = none)")
	)
	flag.Parse()

	cfg := bench.Config{
		Scale:     *scale,
		SuiteSize: *suite,
		Runs:      *runs,
		Exact:     *exact,
		MaxAtoms:  *maxAtom,
	}
	if *approx {
		cfg.Math = gb.Approximate
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	r := bench.NewRunner(cfg)

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	emit := func(name string, tabs ...*bench.Table) {
		if !all && !want[name] {
			return
		}
		for _, t := range tabs {
			if _, err := t.WriteTo(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "write:", err)
				os.Exit(1)
			}
			if *csvDir != "" {
				if _, err := t.WriteCSVFile(*csvDir); err != nil {
					fmt.Fprintln(os.Stderr, "csv:", err)
					os.Exit(1)
				}
			}
		}
	}

	run := func(name string, fn func() *bench.Table) {
		if all || want[name] {
			emit(name, fn())
		}
	}
	run("env", r.TableEnv)
	run("packages", r.TablePackages)
	run("5", r.Fig5Scalability)
	run("6", r.Fig6MinMax)
	run("7", r.Fig7Engines)
	if all || want["8"] {
		a, b := r.Fig8Baselines()
		emit("8", a, b)
	}
	run("9", r.Fig9Energy)
	run("10", r.Fig10Epsilon)
	run("11", r.Fig11CMV)
	if all || want["ablations"] {
		emit("ablations",
			r.AblationWorkDivision(),
			r.AblationOctreeVsNblist(),
			r.AblationEnergyBinning(),
			r.AblationStealing(),
			r.AblationApproxMath(),
			r.AblationStaticBalance(),
			r.AblationDataDistribution(),
			r.AblationCriterion(),
		)
	}
}
