// Command benchstream measures the incremental-evaluation path behind
// /v1/stream: the steady-state cost of one jitter frame through an
// engine.Session against the from-scratch re-evaluation the session
// replaces (surface + octrees + Born + E_pol, cold every frame), plus the
// one-time session build. The headline derived number is
// stream_frame_speedup = frame-full / frame-incremental, which the ROADMAP
// requires to stay >= 5 at the pinned workload (<= 1% of atoms moving per
// frame, serial evaluation, engine defaults).
//
// Results are printed and written as JSON (default BENCH_stream.json, the
// file committed at the repository root).
//
// Usage:
//
//	benchstream                 # N = 4000 atoms, writes BENCH_stream.json
//	benchstream -n 2000 -movers 20 -o out.json
//	benchstream -check          # compare against committed JSON, exit 1 on
//	                            # >15% ns/op regression, new allocations,
//	                            # or speedup below the 5x floor
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"octgb/internal/engine"
	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/surface"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	NAtoms     int                `json:"n_atoms"`
	NQPoints   int                `json:"n_qpoints"`
	Movers     int                `json:"movers"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Results    []result           `json:"results"`
	Derived    map[string]float64 `json:"derived"`
}

// speedupFloor is the acceptance bar: an incremental frame at <= 1% moved
// atoms must beat the from-scratch re-evaluation by at least this factor.
const speedupFloor = 5.0

func main() {
	n := flag.Int("n", 4000, "atom count for the stream benchmarks")
	movers := flag.Int("movers", 10, "atoms moved per frame (must stay <= 1% of -n)")
	outPath := flag.String("o", "BENCH_stream.json", "output JSON path (baseline path with -check)")
	check := flag.Bool("check", false, "compare against the committed JSON instead of overwriting it; exit 1 on regression")
	tol := flag.Float64("tol", 0.15, "allowed fractional ns/op regression for -check")
	best := flag.Int("best", 0, "repeat each benchmark this many times and keep the fastest (0 = 1 normally, 3 with -check)")
	flag.Parse()
	if *best == 0 {
		*best = 1
		if *check {
			*best = 3
		}
	}
	if *movers*100 > *n {
		fmt.Fprintf(os.Stderr, "benchstream: -movers %d exceeds 1%% of -n %d; the speedup pin is defined at <= 1%% motion\n", *movers, *n)
		os.Exit(1)
	}

	var baseline *report
	if *check {
		buf, err := os.ReadFile(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchstream: -check:", err)
			os.Exit(1)
		}
		baseline = new(report)
		if err := json.Unmarshal(buf, baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchstream: -check: parse %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		if baseline.NAtoms != *n || baseline.Movers != *movers {
			fmt.Printf("note: baseline was recorded at n=%d movers=%d, running at n=%d movers=%d\n",
				baseline.NAtoms, baseline.Movers, *n, *movers)
		}
	}

	rep := report{
		NAtoms:     *n,
		Movers:     *movers,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Derived:    map[string]float64{},
	}
	run := func(name string, fn func(b *testing.B)) float64 {
		// Min-of-reps: the minimum is the standard noise-robust estimator
		// for single-machine benchmarking — interference only slows runs.
		var bestRes testing.BenchmarkResult
		bestNS := math.Inf(1)
		for i := 0; i < *best; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				fn(b)
			})
			if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < bestNS {
				bestNS, bestRes = ns, r
			}
		}
		rep.Results = append(rep.Results, result{name, bestNS, bestRes.AllocedBytesPerOp(), bestRes.AllocsPerOp()})
		fmt.Printf("%-28s %14.1f ns/op %12d B/op %8d allocs/op\n",
			name, bestNS, bestRes.AllocedBytesPerOp(), bestRes.AllocsPerOp())
		return bestNS
	}

	mol := molecule.GenerateProtein("stream", *n, 5)
	so := engine.SessionOptions{
		Surf: surface.Default(),
		Eval: engine.Options{Threads: 1, BornEps: 0.9, EpolEps: 0.9},
	}
	eo := so.Eval

	// The jitter workload: each frame moves `movers` atoms by up to 0.05 Å
	// per axis, compounding — the drift regime that exercises slack-margin
	// re-derivation rather than pure value refresh. Frames are pre-generated
	// and cycled so the timed loop measures Step alone.
	frames := jitterFrames(mol, 256, *movers, 0.05, 7)

	probe, err := engine.NewSession(mol, so)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchstream:", err)
		os.Exit(1)
	}
	rep.NQPoints = probe.NumQPoints()

	incrNS := run("stream/frame-incremental", func(b *testing.B) {
		// ResweepEvery is pushed out so the loop times the steady-state
		// incremental frame; the periodic resweep is a verification sweep
		// (bitwise no-op by contract), not part of the per-frame cost model.
		o := so
		o.ResweepEvery = 1 << 30
		ss, err := engine.NewSession(mol, o)
		if err != nil {
			b.Fatal(err)
		}
		// Warm through one full cycle so list re-derivations triggered by
		// the initial drift are amortized out of the steady state.
		for _, fr := range frames {
			if _, err := ss.Step(fr); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ss.Step(frames[i%len(frames)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	fullNS := run("stream/frame-full", func(b *testing.B) {
		// The comparator: what a stateless server pays per frame — surface
		// sampling, both octrees, Born radii and the energy evaluation,
		// all from scratch (moved atoms invalidate every cached stage).
		for i := 0; i < b.N; i++ {
			pr := engine.NewProblem(mol, so.Surf)
			prep, err := engine.Prepare(pr, eo)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := prep.EvalEpol(eo); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Derived["stream_frame_speedup"] = fullNS / incrNS
	rep.Derived["moved_fraction"] = float64(*movers) / float64(*n)

	createNS := run("stream/session-create", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.NewSession(mol, so); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Frames until a session pays for itself vs stateless re-evaluation.
	rep.Derived["create_breakeven_frames"] = createNS / (fullNS - incrNS)

	if *check {
		os.Exit(checkAgainst(baseline, &rep, *tol))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchstream:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchstream:", err)
		os.Exit(1)
	}
	fmt.Printf("\nincremental frame speedup (%d/%d atoms moving, %.2f%%): %.2fx (floor %.0fx)\n",
		*movers, *n, 100*rep.Derived["moved_fraction"], rep.Derived["stream_frame_speedup"], speedupFloor)
	fmt.Printf("session create amortizes after %.1f frames\n", rep.Derived["create_breakeven_frames"])
	if rep.Derived["stream_frame_speedup"] < speedupFloor {
		fmt.Printf("WARNING: speedup below the %.0fx acceptance floor\n", speedupFloor)
	}
	fmt.Printf("wrote %s\n", *outPath)
}

// jitterFrames builds a deterministic compounding jitter stream: each
// frame moves `movers` uniformly-drawn atoms by up to amp per axis.
func jitterFrames(mol *molecule.Molecule, k, movers int, amp float64, seed int64) []engine.FrameDelta {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]geom.Vec3, mol.N())
	for i := range mol.Atoms {
		pos[i] = mol.Atoms[i].Pos
	}
	frames := make([]engine.FrameDelta, k)
	for f := range frames {
		moves := make([]engine.AtomMove, 0, movers)
		for m := 0; m < movers; m++ {
			i := rng.Intn(mol.N())
			d := geom.V((rng.Float64()*2-1)*amp, (rng.Float64()*2-1)*amp, (rng.Float64()*2-1)*amp)
			pos[i] = pos[i].Add(d)
			moves = append(moves, engine.AtomMove{Index: i, Pos: pos[i]})
		}
		frames[f] = engine.FrameDelta{Moves: moves}
	}
	return frames
}

// checkAgainst compares a fresh run with the committed baseline and
// returns the process exit code: 1 if any stream benchmark regressed by
// more than tol on ns/op, gained an allocation, or the derived frame
// speedup fell below the acceptance floor. Run on a quiet machine: the
// gate measures the CPU, and a loaded box fails it spuriously.
func checkAgainst(baseline, fresh *report, tol float64) int {
	base := make(map[string]result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	fmt.Printf("\n%-28s %14s %14s %9s\n", "benchmark", "baseline ns/op", "fresh ns/op", "delta")
	failed := 0
	for _, r := range fresh.Results {
		b, ok := base[r.Name]
		if !ok {
			fmt.Printf("%-28s %14s %14.1f %9s\n", r.Name, "(new)", r.NsPerOp, "-")
			continue
		}
		delta := r.NsPerOp/b.NsPerOp - 1
		status := ""
		if delta > tol {
			status = "  REGRESSED"
			failed++
		}
		if r.AllocsPerOp > b.AllocsPerOp {
			status += "  ALLOCS"
			failed++
		}
		fmt.Printf("%-28s %14.1f %14.1f %+8.1f%%%s\n", r.Name, b.NsPerOp, r.NsPerOp, delta*100, status)
	}
	sp := fresh.Derived["stream_frame_speedup"]
	fmt.Printf("\nincremental frame speedup: %.2fx (floor %.0fx, baseline %.2fx)\n",
		sp, speedupFloor, baseline.Derived["stream_frame_speedup"])
	if sp < speedupFloor {
		fmt.Printf("FAIL: speedup %.2fx below the %.0fx acceptance floor\n", sp, speedupFloor)
		failed++
	}
	if failed > 0 {
		fmt.Printf("FAIL: %d check(s) failed vs %d-atom baseline\n", failed, baseline.NAtoms)
		return 1
	}
	fmt.Printf("OK: no stream benchmark regressed beyond %.0f%%\n", tol*100)
	return 0
}
