// Command benchcomm measures the cluster layer's collectives: the
// topology-aware algorithms (recursive-doubling allreduce, ring
// allgatherv, binomial bcast — cluster/collectives.go) against the
// star/monitor reference, over both transports.
//
// Two sections are reported, following the repository's modeling doctrine
// (simtime: real algorithms, modeled clock):
//
//   - measured: wall-clock per operation on THIS machine — in-process
//     ranks and TCP loopback. On a small host these numbers are dominated
//     by scheduling and memcpy, not by the network the algorithms are
//     designed for; they verify the implementations and ground the model.
//   - modeled: the α–β cost (simtime.AlgoCollectiveCost, Lonestar4
//     machine) of each algorithm at cluster scale, where the log-depth
//     structure pays: allreduce/allgatherv throughput vs. the star at
//     P ≥ 8, and the end-to-end OCT_MPI run with the engines' overlap
//     (non-blocking allgatherv hidden behind list construction) vs. the
//     strictly sequential baseline.
//
// Results are printed and written as JSON (default BENCH_comm.json, the
// file committed at the repository root).
//
// Usage:
//
//	benchcomm                    # writes BENCH_comm.json
//	benchcomm -n 3000 -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"octgb/internal/cluster"
	"octgb/internal/engine"
	"octgb/internal/molecule"
	"octgb/internal/simtime"
	"octgb/internal/surface"
)

type measured struct {
	Op        string  `json:"op"`
	Transport string  `json:"transport"` // local-star, local-topo, tcp-star, tcp-mesh
	P         int     `json:"p"`
	Words     int     `json:"words"`
	NsPerOp   float64 `json:"ns_per_op"`
}

type modeled struct {
	Op            string  `json:"op"`
	P             int     `json:"p"`
	Words         int     `json:"words"`
	StarSec       float64 `json:"star_sec"`
	TopoSec       float64 `json:"topo_sec"`
	SpeedupVsStar float64 `json:"speedup_vs_star"`
}

type endToEnd struct {
	P          int     `json:"p"`
	StarSec    float64 `json:"star_sec"`
	TopoSec    float64 `json:"topo_sec"`
	CommStar   float64 `json:"comm_star_sec"`
	CommTopo   float64 `json:"comm_topo_sec"`
	Speedup    float64 `json:"speedup"`
	OverlapWin bool    `json:"overlap_win"`
}

type report struct {
	GoVersion       string             `json:"go_version"`
	GOMAXPROCS      int                `json:"gomaxprocs"`
	Machine         string             `json:"modeled_machine"`
	NAtoms          int                `json:"n_atoms_end_to_end"`
	Measured        []measured         `json:"measured"`
	ModeledCluster  []modeled          `json:"modeled_cluster"`
	ModeledEndToEnd []endToEnd         `json:"modeled_end_to_end"`
	Derived         map[string]float64 `json:"derived"`
}

// runOp executes one collective once on a communicator.
func runOp(c cluster.Comm, op string, buf, seg, out []float64, counts []int) error {
	switch op {
	case "allreduce":
		return c.AllreduceSum(buf)
	case "allgatherv":
		return c.Allgatherv(seg, counts, out)
	case "bcast":
		return c.Bcast(buf, 0)
	default:
		return c.Barrier()
	}
}

// opArgs builds per-rank buffers for one (op, p, words) point; words is the
// total payload (allgatherv segments sum to it).
func opArgs(op string, rank, p, words int) (buf, seg, out []float64, counts []int) {
	buf = make([]float64, words)
	for i := range buf {
		buf[i] = float64(rank + i)
	}
	counts = make([]int, p)
	for r := range counts {
		counts[r] = words / p
	}
	counts[p-1] += words % p
	off := 0
	for r := 0; r < rank; r++ {
		off += counts[r]
	}
	seg = buf[off : off+counts[rank]]
	out = make([]float64, words)
	return
}

// measureLocal times one op on the in-process transport.
func measureLocal(algo cluster.Algorithm, op string, p, words, iters int) (float64, error) {
	var elapsed time.Duration
	err := cluster.RunLocalAlgo(p, nil, algo, func(c cluster.Comm) error {
		buf, seg, out, counts := opArgs(op, c.Rank(), p, words)
		if err := runOp(c, op, buf, seg, out, counts); err != nil { // warm-up
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := runOp(c, op, buf, seg, out, counts); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			elapsed = time.Since(start)
		}
		return nil
	})
	return float64(elapsed.Nanoseconds()) / float64(iters), err
}

// measureTCP times one op over TCP loopback (star or mesh), all ranks in
// this process.
func measureTCP(mesh bool, op string, p, words, iters int) (float64, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	addr := ln.Addr().String()
	var opts []cluster.TCPOption
	if mesh {
		opts = append(opts, cluster.WithMesh())
	}
	body := func(c cluster.Comm) (time.Duration, error) {
		buf, seg, out, counts := opArgs(op, c.Rank(), p, words)
		if err := runOp(c, op, buf, seg, out, counts); err != nil {
			return 0, err
		}
		if err := c.Barrier(); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := runOp(c, op, buf, seg, out, counts); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	errs := make([]error, p)
	comms := make([]cluster.Comm, p)
	var wg sync.WaitGroup
	for r := 1; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := cluster.DialTCP(addr, r, p, opts...)
			if err != nil {
				errs[r] = err
				return
			}
			comms[r] = c
			_, errs[r] = body(c)
		}(r)
	}
	root, err := cluster.NewTCPRoot(ln, p, opts...)
	if err != nil {
		return 0, err
	}
	comms[0] = root
	elapsed, err := body(root)
	errs[0] = err
	wg.Wait()
	for _, c := range comms {
		if cl, ok := c.(interface{ Close() error }); ok {
			cl.Close()
		}
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(elapsed.Nanoseconds()) / float64(iters), nil
}

func main() {
	n := flag.Int("n", 3000, "atom count for the modeled end-to-end runs")
	outPath := flag.String("o", "BENCH_comm.json", "output JSON path")
	flag.Parse()

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NAtoms:     *n,
		Derived:    map[string]float64{},
	}
	mach := simtime.Lonestar4()
	rep.Machine = mach.Name

	// ---- measured: in-process transport ---------------------------------
	fmt.Println("measured (this machine):")
	for _, op := range []string{"allreduce", "allgatherv", "bcast"} {
		for _, p := range []int{2, 4, 8} {
			for _, words := range []int{128, 8192, 131072} {
				iters := 64
				if words >= 131072 {
					iters = 8
				}
				for _, tr := range []struct {
					name string
					algo cluster.Algorithm
				}{{"local-star", cluster.Star}, {"local-topo", cluster.Topo}} {
					ns, err := measureLocal(tr.algo, op, p, words, iters)
					if err != nil {
						fmt.Fprintln(os.Stderr, "benchcomm:", err)
						os.Exit(1)
					}
					rep.Measured = append(rep.Measured, measured{op, tr.name, p, words, ns})
					fmt.Printf("  %-10s %-10s P=%d words=%-7d %12.0f ns/op\n", op, tr.name, p, words, ns)
				}
			}
		}
	}
	// TCP loopback: one grounding point per op and wiring.
	for _, op := range []string{"allreduce", "allgatherv"} {
		for _, tr := range []struct {
			name string
			mesh bool
		}{{"tcp-star", false}, {"tcp-mesh", true}} {
			ns, err := measureTCP(tr.mesh, op, 4, 8192, 16)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchcomm:", err)
				os.Exit(1)
			}
			rep.Measured = append(rep.Measured, measured{op, tr.name, 4, 8192, ns})
			fmt.Printf("  %-10s %-10s P=%d words=%-7d %12.0f ns/op\n", op, tr.name, 4, 8192, ns)
		}
	}

	// ---- modeled: cluster-scale collective costs ------------------------
	fmt.Println("\nmodeled cluster collectives (Lonestar4 α–β):")
	for _, op := range []string{"allreduce", "allgatherv", "bcast", "barrier"} {
		for _, p := range []int{4, 8, 16, 64} {
			for _, words := range []int{8192, 131072} {
				star := mach.AlgoCollectiveCost(op, false, words, p, 2)
				topo := mach.AlgoCollectiveCost(op, true, words, p, 2)
				sp := star / topo
				rep.ModeledCluster = append(rep.ModeledCluster, modeled{op, p, words, star, topo, sp})
				if p >= 8 {
					fmt.Printf("  %-10s P=%-3d words=%-7d star %.3gs topo %.3gs (%.1fx)\n", op, p, words, star, topo, sp)
				}
			}
		}
	}
	key := func(op string, p, words int) float64 {
		for _, m := range rep.ModeledCluster {
			if m.Op == op && m.P == p && m.Words == words {
				return m.SpeedupVsStar
			}
		}
		return 0
	}
	rep.Derived["allreduce_p8_64kib_speedup"] = key("allreduce", 8, 8192)
	rep.Derived["allgatherv_p8_64kib_speedup"] = key("allgatherv", 8, 8192)

	// ---- modeled: end-to-end OCT_MPI with overlap -----------------------
	fmt.Println("\nmodeled end-to-end OCT_MPI (topo collectives + overlap vs star):")
	mol := molecule.GenerateProtein("benchcomm", *n, 5)
	pr := engine.NewProblem(mol, surface.Default())
	sm := engine.BuildSimModel(pr, engine.OctMPI, engine.Options{}, simtime.DefaultOpCosts())
	for _, p := range []int{4, 8, 16, 32} {
		sm.Opts.TopoCollectives = engine.Off
		star := sm.Time(p, 1, mach, -1)
		sm.Opts.TopoCollectives = engine.On
		topo := sm.Time(p, 1, mach, -1)
		sp := star.TotalSec / topo.TotalSec
		rep.ModeledEndToEnd = append(rep.ModeledEndToEnd, endToEnd{
			P: p, StarSec: star.TotalSec, TopoSec: topo.TotalSec,
			CommStar: star.CommSec, CommTopo: topo.CommSec,
			Speedup: sp, OverlapWin: topo.TotalSec < star.TotalSec,
		})
		fmt.Printf("  P=%-3d star %.4gs (comm %.3gs) topo %.4gs (comm %.3gs) %.2fx\n",
			p, star.TotalSec, star.CommSec, topo.TotalSec, topo.CommSec, sp)
	}
	rep.Derived["oct_mpi_p4_speedup"] = rep.ModeledEndToEnd[0].Speedup

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcomm:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcomm:", err)
		os.Exit(1)
	}
	fmt.Printf("\nallreduce  P=8 64KiB modeled speedup: %.1fx\n", rep.Derived["allreduce_p8_64kib_speedup"])
	fmt.Printf("allgatherv P=8 64KiB modeled speedup: %.1fx\n", rep.Derived["allgatherv_p8_64kib_speedup"])
	fmt.Printf("OCT_MPI    P=4 end-to-end speedup:    %.2fx\n", rep.Derived["oct_mpi_p4_speedup"])
	fmt.Printf("wrote %s\n", *outPath)
}
