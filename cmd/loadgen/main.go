// Command loadgen replays a committed trace spec against the serving tier
// and gates the result on its SLO — the load-harness entry point
// (`make load-check` in CI, ad-hoc experiments by hand).
//
// Modes:
//
//	-mode sim   (default) virtual-time replay through the queueing model
//	            (internal/loadgen + simtime.ServeCosts): deterministic,
//	            seconds of trace in milliseconds of wall time. Runs the
//	            trace twice — untuned baseline, then with the serve.Tuner
//	            admission loop — and reports both.
//	-mode live  wall-clock replay against a real in-process serve.Server
//	            (its own listener on 127.0.0.1:0). Honest end-to-end
//	            latencies, but wall-time expensive: keep live traces small.
//	-mode both  live smoke after the sim pair.
//	-target URL router mode: drive an already-running deployment — an
//	            epolrouter front end or a bare epolserve — instead of
//	            booting a server in-process (implies -mode live). Against a
//	            router the report breaks admitted qps down per shard from
//	            the X-Octgb-Worker response header.
//
// Gating:
//
//	-check BENCH_slo.json   verify the sim pair against the committed
//	                        baseline: the tuned run must meet the trace's
//	                        SLO, must not fall behind the untuned run's
//	                        admitted throughput, and must stay within 15%
//	                        of the committed tuned numbers (p99 up or
//	                        throughput down). Exit 1 on any regression.
//	-o FILE                 write the run's report JSON (the committed
//	                        baseline is exactly this output).
//
// Example:
//
//	go run ./cmd/loadgen -trace traces/steady-mixed.json -o BENCH_slo.json
//	go run ./cmd/loadgen -trace traces/steady-mixed.json -check BENCH_slo.json
//	go run ./cmd/loadgen -trace traces/steady-mixed.json -target http://127.0.0.1:8700
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"octgb/internal/loadgen"
	"octgb/internal/serve"
)

// sloBench is the BENCH_slo.json document: the trace identity, its SLO,
// and the deterministic sim pair (plus the live smoke when run with
// -mode both).
type sloBench struct {
	Trace   string          `json:"trace"`
	SLO     loadgen.SLOSpec `json:"slo"`
	Untuned *loadgen.Report `json:"untuned"`
	Tuned   *loadgen.Report `json:"tuned"`
	Live    *loadgen.Report `json:"live,omitempty"`
}

// tolerance is the regression band against the committed baseline: tuned
// p99 may grow, and tuned admitted throughput may shrink, by at most 15%.
const tolerance = 0.15

func main() {
	var (
		trace    = flag.String("trace", "", "trace spec JSON (required)")
		mode     = flag.String("mode", "sim", "sim, live, or both")
		interval = flag.Duration("interval", 250*time.Millisecond, "tuner control interval")
		speed    = flag.Float64("speed", 1, "live-mode time dilation (2 = replay twice as fast)")
		target   = flag.String("target", "", "base URL of a running router or server to drive (implies -mode live; no in-process server)")
		check    = flag.String("check", "", "verify against a committed BENCH_slo.json; exit 1 on regression")
		out      = flag.String("o", "", "write the report JSON to this file")
	)
	flag.Parse()
	if *trace == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -trace is required")
		os.Exit(2)
	}
	if *target != "" {
		*mode = "live"
	}
	if err := run(*trace, *mode, *interval, *speed, *target, *check, *out); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

func run(tracePath, mode string, interval time.Duration, speed float64, target, checkPath, outPath string) error {
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		return err
	}
	spec, err := loadgen.ParseTraceSpec(raw)
	if err != nil {
		return err
	}
	reqs, err := loadgen.Generate(spec)
	if err != nil {
		return err
	}
	doc := sloBench{Trace: spec.Name, SLO: spec.SLO}

	if mode == "sim" || mode == "both" {
		if doc.Untuned, err = loadgen.Simulate(spec, reqs, loadgen.SimOptions{}); err != nil {
			return err
		}
		tc := tunerFor(spec, interval)
		if doc.Tuned, err = loadgen.Simulate(spec, reqs, loadgen.SimOptions{Tuner: tc}); err != nil {
			return err
		}
		fmt.Printf("sim untuned: p99=%.1fms qps=%.1f rejected=%d shed=%d\n",
			doc.Untuned.P99MS, doc.Untuned.AdmittedQPS, doc.Untuned.RejectedQueueFull, doc.Untuned.Shed)
		fmt.Printf("sim tuned:   p99=%.1fms qps=%.1f rejected=%d shed=%d decisions=%d knobs=%+v\n",
			doc.Tuned.P99MS, doc.Tuned.AdmittedQPS, doc.Tuned.RejectedQueueFull, doc.Tuned.Shed,
			len(doc.Tuned.Decisions), doc.Tuned.FinalKnobs)
	}
	if mode == "live" || mode == "both" {
		if doc.Live, err = runLive(spec, reqs, interval, speed, target); err != nil {
			return err
		}
		fmt.Printf("live:        p99=%.1fms qps=%.1f completed=%d rejected=%d shed=%d failed=%d\n",
			doc.Live.P99MS, doc.Live.AdmittedQPS, doc.Live.Completed,
			doc.Live.RejectedQueueFull, doc.Live.Shed, doc.Live.Failed)
		if len(doc.Live.PerShardQPS) > 0 {
			shards := make([]string, 0, len(doc.Live.PerShardQPS))
			for s := range doc.Live.PerShardQPS {
				shards = append(shards, s)
			}
			sort.Strings(shards)
			fmt.Printf("per-shard admitted qps:\n")
			for _, s := range shards {
				fmt.Printf("  %-24s %.1f\n", s, doc.Live.PerShardQPS[s])
			}
		}
	}

	if outPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if checkPath != "" {
		return checkAgainst(doc, spec, checkPath)
	}
	return nil
}

// tunerFor builds the tuner configuration the trace's SLO implies.
func tunerFor(spec *loadgen.TraceSpec, interval time.Duration) *serve.TunerConfig {
	return &serve.TunerConfig{
		SLO: serve.SLO{
			P99:    time.Duration(spec.SLO.P99MS * float64(time.Millisecond)),
			MinQPS: spec.SLO.MinQPS,
		},
		Interval: interval,
	}
}

// runLive boots a real server sized by the trace's sim block (tuner
// enabled — live mode exists to watch the real control loop move) and
// replays the trace against it over HTTP. With a -target the boot is
// skipped and the trace drives the given deployment — an epolrouter front
// end fans the arrivals out across its shards.
func runLive(spec *loadgen.TraceSpec, reqs []loadgen.Request, interval time.Duration, speed float64, target string) (*loadgen.Report, error) {
	if target != "" {
		return loadgen.RunLive(spec, reqs, loadgen.LiveOptions{
			BaseURL: strings.TrimRight(target, "/"),
			Speed:   speed,
		})
	}
	cfg := serve.Config{
		Addr:     "127.0.0.1:0",
		Workers:  spec.Sim.Workers,
		Threads:  1,
		MaxQueue: spec.Sim.Queue,
	}
	if spec.Sim.BatchWindowMS > 0 {
		cfg.BatchWindow = time.Duration(spec.Sim.BatchWindowMS * float64(time.Millisecond))
	}
	if spec.SLO.P99MS > 0 {
		cfg.Tuner = tunerFor(spec, interval)
	}
	srv := serve.New(cfg)
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	rep, err := loadgen.RunLive(spec, reqs, loadgen.LiveOptions{
		BaseURL: "http://" + srv.Addr(),
		Speed:   speed,
	})
	if err != nil {
		return nil, err
	}
	for _, d := range srv.TunerDecisions() {
		rep.Decisions = append(rep.Decisions, d.String())
	}
	k := srv.CurrentKnobs()
	rep.FinalKnobs = &k
	rep.Tuned = cfg.Tuner != nil
	return rep, nil
}

// checkAgainst is the CI gate: absolute SLO compliance, tuned-vs-untuned
// throughput, and the ±15% band against the committed baseline.
func checkAgainst(doc sloBench, spec *loadgen.TraceSpec, path string) error {
	if doc.Tuned == nil || doc.Untuned == nil {
		return fmt.Errorf("-check requires sim mode")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base sloBench
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if base.Trace != doc.Trace {
		return fmt.Errorf("baseline is for trace %q, ran %q", base.Trace, doc.Trace)
	}
	if base.Tuned == nil {
		return fmt.Errorf("baseline %s has no tuned report", path)
	}

	var fails []string
	// 1. The tuned run meets the trace's explicit SLO.
	if err := doc.Tuned.CheckSLO(spec.SLO); err != nil {
		fails = append(fails, err.Error())
	}
	// 2. Tuning never costs admitted throughput against the untuned tier.
	if doc.Tuned.AdmittedQPS < doc.Untuned.AdmittedQPS {
		fails = append(fails, fmt.Sprintf("tuned admitted %.2f qps under untuned %.2f",
			doc.Tuned.AdmittedQPS, doc.Untuned.AdmittedQPS))
	}
	// 3. No drift past the band vs the committed baseline.
	if lim := base.Tuned.P99MS * (1 + tolerance); doc.Tuned.P99MS > lim {
		fails = append(fails, fmt.Sprintf("tuned p99 %.1fms exceeds baseline %.1fms +15%% (%.1fms)",
			doc.Tuned.P99MS, base.Tuned.P99MS, lim))
	}
	if lim := base.Tuned.AdmittedQPS * (1 - tolerance); doc.Tuned.AdmittedQPS < lim {
		fails = append(fails, fmt.Sprintf("tuned qps %.2f under baseline %.2f -15%% (%.2f)",
			doc.Tuned.AdmittedQPS, base.Tuned.AdmittedQPS, lim))
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "SLO GATE FAIL: %s\n", f)
		}
		return fmt.Errorf("%d SLO gate failure(s)", len(fails))
	}
	fmt.Printf("SLO gate OK: tuned p99 %.1fms ≤ %.0fms, qps %.1f ≥ untuned %.1f (baseline p99 %.1fms, qps %.1f)\n",
		doc.Tuned.P99MS, spec.SLO.P99MS, doc.Tuned.AdmittedQPS, doc.Untuned.AdmittedQPS,
		base.Tuned.P99MS, base.Tuned.AdmittedQPS)
	return nil
}
