package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"octgb"
	"octgb/internal/fabric"
	"octgb/internal/serve"
)

// TestEpolrouterEndToEnd drives the binary's real entry point: a worker
// registers against the membership listener, an energy request routed
// through the front end matches the library's one-shot octgb.Compute, and
// SIGTERM shuts the router down cleanly.
func TestEpolrouterEndToEnd(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan [2]string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-addr", "127.0.0.1:0", "-membership", "127.0.0.1:0", "-timeout", "500ms"}, &out, ready)
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("router never became ready")
	}
	base := "http://" + addrs[0]

	// An empty ring is unhealthy by design.
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no workers = %d, want 503", hz.StatusCode)
	}

	// One real engine worker joins the ring.
	srv := serve.New(serve.Config{Addr: "127.0.0.1:0", Workers: 1, Threads: 1})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	agent, err := fabric.StartWorker(fabric.WorkerConfig{
		RouterAddr: addrs[1],
		WorkerID:   "w0",
		Advertise:  srv.Addr(),
		Epoch:      1,
		Timeout:    500 * time.Millisecond,
		Load:       fabric.ServeLoad(srv),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if !agent.WaitRegistered(10 * time.Second) {
		t.Fatal("worker never registered")
	}

	// Routed energy matches the in-process library answer.
	mol := octgb.GenerateProtein("router-demo", 120, 3)
	want, err := octgb.Compute(mol, octgb.Options{
		Engine: octgb.OctCilk, Threads: 1, BornEps: 0.9, EpolEps: 0.9,
		Surface: octgb.SurfaceOptions{SubdivLevel: 1, Degree: 1, RadiusScale: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(serve.EnergyRequest{Molecule: serve.FromMolecule(mol)})
	resp, err := http.Post(base+"/v1/energy", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var er serve.EnergyResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed energy status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(fabric.WorkerHeader); got != "w0" {
		t.Fatalf("%s = %q, want w0", fabric.WorkerHeader, got)
	}
	if d := er.Energy - want.Energy; d > 1e-9 || d < -1e-9 {
		t.Fatalf("routed %.17g vs octgb.Compute %.17g", er.Energy, want.Energy)
	}

	// /stats speaks the router's own schema.
	st, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats fabric.RouterStats
	err = json.NewDecoder(st.Body).Decode(&stats)
	st.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Workers) != 1 || stats.Requests.Forwarded < 1 {
		t.Fatalf("router stats off: %+v", stats)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean exit", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("run never returned after SIGTERM")
	}
	for _, wantLine := range []string{"routing on", "shutting down", "stopped"} {
		if !strings.Contains(out.String(), wantLine) {
			t.Fatalf("log missing %q:\n%s", wantLine, out.String())
		}
	}
}

// TestEpolrouterBadFlags: flag errors surface as a run() error, not an
// os.Exit deep in the stack.
func TestEpolrouterBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, nil); err == nil {
		t.Fatal("expected flag parse error")
	}
}
