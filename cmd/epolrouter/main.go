// Command epolrouter runs the stateless front end of the sharded serving
// fabric: it accepts worker registrations on a membership port, routes
// /v1/energy, /v1/sweep and /v1/stream requests across the registered
// workers by molecule content hash on a consistent-hash ring, fails over
// to replica shards when a worker dies, and hedges tail-latency requests.
//
// Usage:
//
//	epolrouter -addr :8700 -membership :8701
//	epolserve -addr :8686 -join 127.0.0.1:8701     # then add workers
//	epolrouter -replicas 2 -hedge-delay 0          # adaptive p95 hedging
//	epolrouter -hedge-delay -1ns                   # hedging off
//
// Endpoints: POST /v1/energy, POST /v1/sweep, POST /v1/stream (+ the
// shard-sticky /v1/stream/{id}/frame and /close), GET /stats, GET
// /healthz and, with -observe, GET /metrics. Routers hold no evaluation
// state — run several behind any TCP load balancer; each keeps its own
// membership view. See DESIGN.md §14 for the architecture and README
// "Sharded serving" for a walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"octgb/internal/fabric"
	"octgb/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "epolrouter:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args, serves until
// SIGTERM/SIGINT and returns. When ready is non-nil the bound HTTP and
// membership addresses are sent on it once the listeners are up.
func run(args []string, out io.Writer, ready chan<- [2]string) error {
	fs := flag.NewFlagSet("epolrouter", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", ":8700", "HTTP listen address")
		membership = fs.String("membership", ":8701", "worker registration listen address")
		replicas   = fs.Int("replicas", fabric.DefaultReplicas, "replication factor R: failover + hot-key replica set size")
		vnodes     = fs.Int("vnodes", fabric.DefaultVNodes, "virtual nodes per worker on the ring")
		timeout    = fs.Duration("timeout", fabric.DefaultMembershipTimeout, "heartbeat timeout: a worker silent this long is failed")
		hedge      = fs.Duration("hedge-delay", 0, "hedging delay: 0 adapts to upstream p95, negative disables hedging")
		observe    = fs.Bool("observe", true, "expose /metrics and record per-shard latency histograms")
		verbose    = fs.Bool("v", false, "log membership and failover events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := fabric.RouterConfig{
		Addr:           *addr,
		MembershipAddr: *membership,
		Replicas:       *replicas,
		VNodes:         *vnodes,
		Timeout:        *timeout,
		HedgeDelay:     *hedge,
	}
	if *observe {
		cfg.Observe = obs.New()
	}
	if *verbose {
		cfg.Logger = log.New(out, "", log.LstdFlags|log.Lmicroseconds)
	}

	// Register the handler before binding so a signal racing startup is
	// never lost.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	rt := fabric.NewRouter(cfg)
	if err := rt.Start(); err != nil {
		return err
	}
	fmt.Fprintf(out, "epolrouter: routing on %s, membership on %s (R=%d, vnodes=%d)\n",
		rt.Addr(), rt.MembershipAddr(), *replicas, *vnodes)
	if ready != nil {
		ready <- [2]string{rt.Addr(), rt.MembershipAddr()}
	}

	sig := <-sigCh
	fmt.Fprintf(out, "epolrouter: %v — shutting down\n", sig)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "epolrouter: stopped")
	return nil
}
