// Command epolserve runs the resident E_pol evaluation service: an
// HTTP/JSON server with a prepared-problem cache, pose-sweep batching and
// admission control in front of the engine layer.
//
// Usage:
//
//	epolserve -addr :8686 -workers 2 -threads 4
//	epolserve -ranks 4                  # hybrid engine for cold requests
//	epolserve -cache-mb 1024 -queue 256 # bigger deployment
//	epolserve -slo-p99 150ms -slo-min-qps 50   # self-tuning admission
//
// Endpoints: POST /v1/energy, POST /v1/sweep, POST /v1/stream (create an
// incremental session) with POST /v1/stream/{id}/frame and DELETE
// /v1/stream/{id}, GET /healthz, GET /stats —
// plus, with -observe (the default), GET /metrics (Prometheus text
// format), GET /debug/trace (Chrome trace_event JSON) and the
// /debug/pprof/* profiling family. See README "Serving"/"Observability"
// for curl quickstarts, DESIGN.md §9 for the serving architecture and §10
// for the metric inventory. SIGTERM/SIGINT drain gracefully: in-flight and
// queued requests complete, new ones are rejected with 503 (metrics keep
// scraping during the drain).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"octgb/internal/core"
	"octgb/internal/fabric"
	"octgb/internal/obs"
	"octgb/internal/serve"
	"octgb/internal/surface"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "epolserve:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args, serves until
// SIGTERM/SIGINT, drains and returns. When ready is non-nil the bound
// address is sent on it once the listener is up.
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("epolserve", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr        = fs.String("addr", serve.DefaultAddr, "listen address")
		workers     = fs.Int("workers", 2, "worker pool size (concurrent evaluations)")
		threads     = fs.Int("threads", 2, "work-stealing threads per evaluation")
		ranks       = fs.Int("ranks", 1, "in-process ranks; > 1 uses the hybrid engine for cold requests")
		queue       = fs.Int("queue", 64, "submission queue capacity (admission limit)")
		cacheMB     = fs.Int("cache-mb", 256, "prepared-problem cache budget in MiB")
		maxAtoms    = fs.Int("max-atoms", 200000, "reject molecules larger than this")
		batchWindow = fs.Duration("batch-window", 5*time.Millisecond, "sweep coalescing window")
		maxSessions = fs.Int("max-sessions", 8, "live /v1/stream session cap (LRU eviction)")
		sessionIdle = fs.Duration("session-idle", 5*time.Minute, "evict stream sessions idle this long")
		deadline    = fs.Duration("deadline", 60*time.Second, "default per-request deadline")
		drain       = fs.Duration("drain-timeout", 2*time.Minute, "graceful shutdown budget")
		bornEps     = fs.Float64("borneps", 0.9, "default Born-radius approximation parameter ε")
		epolEps     = fs.Float64("epoleps", 0.9, "default energy approximation parameter ε")
		prec        = fs.String("precision", "f64", "default kernel storage tier: f64 | f32 (~1e-6 relative error, half the memory)")
		subdiv      = fs.Int("subdiv", 1, "default surface icosphere subdivision level")
		degree      = fs.Int("degree", 1, "default Dunavant quadrature degree (1-5)")
		observe     = fs.Bool("observe", true, "expose /metrics, /debug/trace and /debug/pprof/* and record latency histograms")
		sloP99      = fs.Duration("slo-p99", 0, "enable the admission tuner: steer batch window, queue depth and shed threshold toward this admitted-p99 target (0 = tuner off)")
		sloQPS      = fs.Float64("slo-min-qps", 0, "admitted-throughput floor the tuner protects while tightening (with -slo-p99)")
		sloEvery    = fs.Duration("slo-interval", time.Second, "tuner control interval (with -slo-p99)")
		join        = fs.String("join", "", "fabric worker mode: register with an epolrouter's membership address (host:port) and serve a shard")
		workerID    = fs.String("worker-id", "", "stable worker identity on the ring (with -join; default host-pid)")
		advertise   = fs.String("advertise", "", "HTTP address the router forwards to (with -join; default the bound listen address)")
		verbose     = fs.Bool("v", false, "log every request")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tier, ok := core.ParsePrecision(*prec)
	if !ok {
		return fmt.Errorf("epolserve: unknown -precision %q (want f64 or f32)", *prec)
	}

	cfg := serve.Config{
		Addr:            *addr,
		Workers:         *workers,
		Threads:         *threads,
		Ranks:           *ranks,
		MaxQueue:        *queue,
		MaxCacheBytes:   int64(*cacheMB) << 20,
		MaxAtoms:        *maxAtoms,
		BatchWindow:     *batchWindow,
		MaxSessions:     *maxSessions,
		SessionIdle:     *sessionIdle,
		DefaultDeadline: *deadline,
		BornEps:         *bornEps,
		EpolEps:         *epolEps,
		Precision:       tier,
		Surface:         surface.Options{SubdivLevel: *subdiv, Degree: *degree},
	}
	if *observe {
		cfg.Observe = obs.New()
	}
	if *sloP99 > 0 {
		cfg.Tuner = &serve.TunerConfig{
			SLO:      serve.SLO{P99: *sloP99, MinQPS: *sloQPS},
			Interval: *sloEvery,
		}
	}
	if *verbose {
		cfg.Logger = log.New(out, "", log.LstdFlags|log.Lmicroseconds)
	}

	// Register the handler before binding so a signal racing startup is
	// never lost.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	s := serve.New(cfg)
	if err := s.Start(); err != nil {
		return err
	}
	fmt.Fprintf(out, "epolserve: listening on %s\n", s.Addr())

	// Fabric worker mode: join a router's ring and heartbeat load reports
	// for its cache-aware balancer. The agent reconnects on its own if the
	// router restarts; Close sends a Goodbye so a drain unmaps the shard
	// immediately instead of waiting out the heartbeat timeout.
	var agent *fabric.Worker
	if *join != "" {
		id := *workerID
		if id == "" {
			id = defaultWorkerID()
		}
		adv := *advertise
		if adv == "" {
			adv = s.Addr()
		}
		a, err := fabric.StartWorker(fabric.WorkerConfig{
			RouterAddr: *join,
			WorkerID:   id,
			Advertise:  adv,
			Epoch:      uint64(time.Now().UnixNano()),
			Load:       fabric.ServeLoad(s),
			Logf: func(format string, args ...any) {
				if *verbose {
					fmt.Fprintf(out, format+"\n", args...)
				}
			},
		})
		if err != nil {
			_ = s.Shutdown(context.Background())
			return err
		}
		agent = a
		fmt.Fprintf(out, "epolserve: joining fabric at %s as %s (advertising %s)\n", *join, id, adv)
	}
	if ready != nil {
		ready <- s.Addr()
	}

	sig := <-sigCh
	fmt.Fprintf(out, "epolserve: %v — draining\n", sig)
	if agent != nil {
		agent.Close() // goodbye first: the router stops routing here before the drain
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(out, "epolserve: drained")
	return nil
}

// defaultWorkerID derives a ring identity from host and pid, restricted
// to the registration protocol's ID alphabet.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	id := []byte(fmt.Sprintf("%s-%d", host, os.Getpid()))
	for i, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			id[i] = '-'
		}
	}
	if len(id) > 64 {
		id = id[:64]
	}
	return string(id)
}
