package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"octgb"
	"octgb/internal/serve"
)

// TestEpolserveEndToEnd drives the binary's real entry point over a real
// TCP listener: the quickstart molecule's served energy must match the
// library's one-shot octgb.Compute, and a SIGTERM mid-request must drain
// gracefully — the in-flight request completes before run() returns.
func TestEpolserveEndToEnd(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-threads", "2"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// Readiness over the wire.
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", hz.StatusCode)
	}

	// The README quickstart molecule, served vs computed in-process.
	mol := octgb.GenerateProtein("demo", 500, 1)
	want, err := octgb.Compute(mol, octgb.Options{
		Engine: octgb.OctCilk, Threads: 2, BornEps: 0.9, EpolEps: 0.9,
		Surface: octgb.SurfaceOptions{SubdivLevel: 1, Degree: 1, RadiusScale: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var resp serve.EnergyResponse
	code := post(t, base+"/v1/energy", serve.EnergyRequest{Molecule: serve.FromMolecule(mol)}, &resp)
	if code != http.StatusOK {
		t.Fatalf("energy status %d", code)
	}
	if d := math.Abs(resp.Energy-want.Energy) / math.Abs(want.Energy); d > 1e-12 {
		t.Fatalf("served %.17g vs octgb.Compute %.17g (rel %.3g)", resp.Energy, want.Energy, d)
	}
	if resp.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", resp.Cache)
	}

	// Put a cold (slow) request in flight, then SIGTERM the process while
	// it runs.
	slow := octgb.GenerateProtein("slow", 2000, 9)
	slowDone := make(chan int, 1)
	var slowResp serve.EnergyResponse
	go func() {
		slowDone <- post(t, base+"/v1/energy", serve.EnergyRequest{Molecule: serve.FromMolecule(slow)}, &slowResp)
	}()
	waitInflight(t, base)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case code := <-slowDone:
		if code != http.StatusOK {
			t.Fatalf("in-flight request got %d during drain, want 200", code)
		}
		if slowResp.Energy >= 0 {
			t.Fatalf("in-flight request returned energy %v", slowResp.Energy)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean exit", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("run never returned after SIGTERM")
	}
	for _, wantLine := range []string{"listening on", "draining", "drained"} {
		if !strings.Contains(out.String(), wantLine) {
			t.Fatalf("log missing %q:\n%s", wantLine, out.String())
		}
	}
}

// TestEpolserveBadFlags: flag errors surface as a run() error, not an
// os.Exit deep in the stack.
func TestEpolserveBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, nil); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func post(t *testing.T, url string, v, dst any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

// waitInflight polls /stats until an evaluation is actually running.
func waitInflight(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st serve.StatsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Admission.Inflight > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(fmt.Errorf("no evaluation entered flight"))
}
