// Command benchserve measures what the serving layer buys over one-shot
// evaluation: prepared-problem caching (cold vs warm request latency) and
// pose-sweep batching (one coalesced /v1/sweep vs the same poses as
// sequential /v1/energy requests of client-assembled complexes).
//
// It starts an in-process server on a loopback listener, drives it over
// real HTTP, and writes a JSON report (default BENCH_serve.json):
//
//	benchserve                       # defaults, writes BENCH_serve.json
//	benchserve -atoms 5000 -poses 32 -o /tmp/bench.json
//
// The numbers of record for this repository are committed as
// BENCH_serve.json.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"octgb/internal/geom"
	"octgb/internal/molecule"
	"octgb/internal/serve"
	"octgb/internal/surface"
)

type report struct {
	Date    string `json:"date"`
	GoOS    string `json:"goos"`
	GoArch  string `json:"goarch"`
	NumCPU  int    `json:"num_cpu"`
	Threads int    `json:"threads"`
	Subdiv  int    `json:"subdiv_level"`

	Cache struct {
		Atoms       int     `json:"atoms"`
		ColdMS      float64 `json:"cold_ms"`
		WarmRuns    int     `json:"warm_runs"`
		WarmMeanMS  float64 `json:"warm_mean_ms"`
		WarmMinMS   float64 `json:"warm_min_ms"`
		WarmSpeedup float64 `json:"warm_speedup"` // cold / warm mean
	} `json:"cache"`

	Batch struct {
		ReceptorAtoms    int     `json:"receptor_atoms"`
		LigandAtoms      int     `json:"ligand_atoms"`
		Poses            int     `json:"poses"`
		BatchedWallMS    float64 `json:"batched_wall_ms"`
		SequentialWallMS float64 `json:"sequential_wall_ms"`
		BatchSpeedup     float64 `json:"batch_speedup"` // sequential / batched
		MaxEnergyRelDiff float64 `json:"max_energy_rel_diff"`
		// ComposeAllocsPerPose is the steady-state allocation count of one
		// pose composition against a warm (pool-recycled) scratch — the
		// number the sync.Pool reuse in the sweep path pins. The residual
		// allocations are the posed molecule and merged complex Compose
		// returns; scratch growth here means the reuse regressed (the serve
		// tests enforce the same pin).
		ComposeAllocsPerPose float64 `json:"compose_allocs_per_pose"`
	} `json:"batch"`
}

func main() {
	var (
		out     = flag.String("o", "BENCH_serve.json", "output report path")
		atoms   = flag.Int("atoms", 2500, "cache benchmark molecule size")
		recN    = flag.Int("rec", 1000, "sweep receptor size")
		ligN    = flag.Int("lig", 250, "sweep ligand size")
		poses   = flag.Int("poses", 64, "sweep pose count")
		warm    = flag.Int("warm", 8, "warm repetitions")
		threads = flag.Int("threads", 2, "engine threads")
		// Subdivision 2 is the production-resolution setting; it is also
		// where caching matters most — the surface and Born stages the warm
		// path skips grow ~4x per level while the E_pol evaluation does not.
		subdiv = flag.Int("subdiv", 2, "surface subdivision level")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(*out, *atoms, *recN, *ligN, *poses, *warm, *threads, *subdiv, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

func run(out string, atoms, recN, ligN, poses, warm, threads, subdiv int, seed int64) error {
	surf := surface.Options{SubdivLevel: subdiv, Degree: 1, RadiusScale: 1}
	s := serve.New(serve.Config{
		Addr:    "127.0.0.1:0",
		Workers: 1, // serialize evaluations: latency, not throughput, is measured
		Threads: threads,
		Surface: surf,
		// Small budget so the 64 distinct sequential complexes exercise
		// eviction instead of ballooning memory.
		MaxCacheBytes: 128 << 20,
		BatchWindow:   time.Millisecond,
	})
	if err := s.Start(); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()

	var rep report
	rep.Date = time.Now().UTC().Format(time.RFC3339)
	rep.GoOS, rep.GoArch, rep.NumCPU = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()
	rep.Threads, rep.Subdiv = threads, subdiv

	// --- Cold vs warm: the prepared-problem cache. -----------------------
	mol := molecule.GenerateProtein("bench", atoms, seed)
	mj := serve.FromMolecule(mol)

	var er serve.EnergyResponse
	coldMS, err := timedEnergy(base, mj, &er)
	if err != nil {
		return fmt.Errorf("cold request: %w", err)
	}
	if er.Cache != "miss" {
		return fmt.Errorf("cold request hit the cache (%s)", er.Cache)
	}
	coldEnergy := er.Energy

	var warmTotal, warmMin float64
	warmMin = math.Inf(1)
	for i := 0; i < warm; i++ {
		ms, err := timedEnergy(base, mj, &er)
		if err != nil {
			return fmt.Errorf("warm request %d: %w", i, err)
		}
		if er.Cache != "hit" {
			return fmt.Errorf("warm request %d missed the cache (%s)", i, er.Cache)
		}
		// Thread scheduling perturbs the reduction order run to run; the
		// energies agree to last-ulp level, not bitwise.
		if d := math.Abs(er.Energy-coldEnergy) / math.Abs(coldEnergy); d > 1e-12 {
			return fmt.Errorf("warm energy %.17g vs cold %.17g (rel %.3g)", er.Energy, coldEnergy, d)
		}
		warmTotal += ms
		warmMin = math.Min(warmMin, ms)
	}
	rep.Cache.Atoms = atoms
	rep.Cache.ColdMS = coldMS
	rep.Cache.WarmRuns = warm
	rep.Cache.WarmMeanMS = warmTotal / float64(warm)
	rep.Cache.WarmMinMS = warmMin
	rep.Cache.WarmSpeedup = coldMS / rep.Cache.WarmMeanMS
	fmt.Printf("cache: %d atoms — cold %.1f ms, warm %.2f ms mean (%.2f min) → %.1fx\n",
		atoms, coldMS, rep.Cache.WarmMeanMS, warmMin, rep.Cache.WarmSpeedup)

	// --- Batched sweep vs sequential singles. ----------------------------
	rec := molecule.GenerateProtein("receptor", recN, seed+1)
	lig := molecule.GenerateProtein("ligand", ligN, seed+2)
	rj, lj := serve.FromMolecule(rec), serve.FromMolecule(lig)
	// Contact-distance translations around the receptor (rotation-free so
	// composed and re-sampled surfaces agree exactly — see surface tests).
	rot := 0.6 * rec.Bounds().HalfDiagonal()
	pj := make([]serve.PoseJSON, poses)
	rigid := make([]geom.Rigid, poses)
	for i := range pj {
		a := 2 * math.Pi * float64(i) / float64(poses)
		pj[i] = serve.PoseJSON{T: [3]float64{rot * math.Cos(a), rot * math.Sin(a), 0.1 * rot * float64(i%5)}}
		rigid[i] = pj[i].ToRigid()
	}

	// Batched: every pose in one /v1/sweep (one engine run; receptor and
	// ligand prepared once, per-pose surfaces composed from cached parts).
	var sw serve.SweepResponse
	t0 := time.Now()
	if err := postJSON(base+"/v1/sweep", serve.SweepRequest{
		Receptor: &rj, Ligand: lj, Poses: pj, DeadlineMS: 30 * 60 * 1000,
	}, &sw); err != nil {
		return fmt.Errorf("batched sweep: %w", err)
	}
	rep.Batch.BatchedWallMS = msSince(t0)
	if len(sw.Energies) != poses {
		return fmt.Errorf("batched sweep returned %d energies, want %d", len(sw.Energies), poses)
	}

	// Sequential: the same poses as independent /v1/energy requests, the
	// client assembling each complex itself — the workflow the serving
	// layer replaces.
	seqEnergies := make([]float64, poses)
	t0 = time.Now()
	for i, tr := range rigid {
		cx := molecule.Merge(fmt.Sprintf("cx-%d", i), rec, lig.Transform(tr))
		var er serve.EnergyResponse
		if err := postJSON(base+"/v1/energy", serve.EnergyRequest{
			Molecule: serve.FromMolecule(cx), DeadlineMS: 30 * 60 * 1000,
		}, &er); err != nil {
			return fmt.Errorf("sequential pose %d: %w", i, err)
		}
		seqEnergies[i] = er.Energy
	}
	rep.Batch.SequentialWallMS = msSince(t0)

	var maxRel float64
	for i := range seqEnergies {
		d := math.Abs(sw.Energies[i]-seqEnergies[i]) / math.Abs(seqEnergies[i])
		maxRel = math.Max(maxRel, d)
	}
	rep.Batch.ReceptorAtoms, rep.Batch.LigandAtoms, rep.Batch.Poses = recN, ligN, poses
	rep.Batch.BatchSpeedup = rep.Batch.SequentialWallMS / rep.Batch.BatchedWallMS
	rep.Batch.MaxEnergyRelDiff = maxRel
	rep.Batch.ComposeAllocsPerPose = composeAllocs(rec, lig, surf, rigid[0])
	fmt.Printf("batch: %d poses (%d+%d atoms) — batched %.0f ms vs sequential %.0f ms → %.2fx (max rel diff %.2g, %.0f allocs/pose composed)\n",
		poses, recN, ligN, rep.Batch.BatchedWallMS, rep.Batch.SequentialWallMS, rep.Batch.BatchSpeedup, maxRel,
		rep.Batch.ComposeAllocsPerPose)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// composeAllocs measures the steady-state allocations of one pose
// composition against a warm reusable scratch — the quantity the serving
// layer's sync.Pool keeps flat across batch flushes.
func composeAllocs(rec, lig *molecule.Molecule, surf surface.Options, pose geom.Rigid) float64 {
	recQ := surface.Sample(rec, surf)
	ligQ := surface.Sample(lig, surf)
	sc := new(surface.ComposeScratch)
	pc := surface.NewPoseComposer(rec, recQ, lig, ligQ, surf, sc)
	if _, _, err := pc.Compose("warm", pose); err != nil {
		return math.NaN()
	}
	return testing.AllocsPerRun(50, func() {
		_, _, _ = pc.Compose("steady", pose)
	})
}

func timedEnergy(base string, mj serve.MoleculeJSON, out *serve.EnergyResponse) (float64, error) {
	t0 := time.Now()
	err := postJSON(base+"/v1/energy", serve.EnergyRequest{Molecule: mj, DeadlineMS: 30 * 60 * 1000}, out)
	return msSince(t0), err
}

func postJSON(url string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: HTTP %d %s %s", url, resp.StatusCode, e.Error, e.Detail)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }
