// Command obssmoke is the observability smoke test behind `make
// obs-smoke`: it boots the serving stack with instrumentation on a
// loopback port, drives one energy request and one pose sweep through it,
// then scrapes GET /metrics and fails the process if the exposition is
// malformed (obs.ValidateExposition) or any expected metric family is
// missing, and checks /debug/trace decodes as trace_event JSON. It needs
// no external tooling — the validator is the library's own line-by-line
// Prometheus text-format parser — so it runs anywhere `go run` does.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"octgb/internal/molecule"
	"octgb/internal/obs"
	"octgb/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: PASS")
}

func run() error {
	ob := obs.New()
	s := serve.New(serve.Config{
		Addr:    "127.0.0.1:0",
		Workers: 2,
		Threads: 2,
		Observe: ob,
	})
	if err := s.Start(); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()

	mol := serve.FromMolecule(molecule.GenerateProtein("smoke", 150, 1))
	if err := post(base+"/v1/energy", serve.EnergyRequest{Molecule: mol}); err != nil {
		return fmt.Errorf("energy request: %w", err)
	}
	sweep := serve.SweepRequest{Ligand: mol, Poses: []serve.PoseJSON{{T: [3]float64{2, 0, 0}}}}
	if err := post(base+"/v1/sweep", sweep); err != nil {
		return fmt.Errorf("sweep request: %w", err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		return fmt.Errorf("malformed exposition: %w", err)
	}
	for _, want := range []string{
		"octgb_serve_request_seconds",
		"octgb_serve_queue_wait_seconds",
		"octgb_serve_stage_seconds",
		"octgb_engine_phase_seconds",
		"octgb_sched_executed_total",
	} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("/metrics missing family %s", want)
		}
	}
	fmt.Printf("obssmoke: /metrics valid (%d bytes, %d lines)\n", len(body), bytes.Count(body, []byte("\n")))

	resp, err = http.Get(base + "/debug/trace")
	if err != nil {
		return err
	}
	var dump struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("/debug/trace: %w", err)
	}
	if len(dump.TraceEvents) == 0 {
		return fmt.Errorf("/debug/trace holds no spans after two requests")
	}
	fmt.Printf("obssmoke: /debug/trace valid (%d spans)\n", len(dump.TraceEvents))
	return nil
}

func post(url string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return nil
}
