// Command epolnode runs the distributed algorithm across genuine OS
// processes connected over TCP — the deployment analogue of the paper's
// MPI runs, with per-process data replication. Every process loads the
// same molecule file and participates as one rank.
//
// Start the root (rank 0), then the workers:
//
//	epolnode -listen :7777 -ranks 3 -in mol.pqr -threads 6
//	epolnode -connect host:7777 -rank 1 -ranks 3 -in mol.pqr -threads 6
//	epolnode -connect host:7777 -rank 2 -ranks 3 -in mol.pqr -threads 6
//
// The root prints the energy when all ranks finish. A single-machine
// demo with a generated molecule:
//
//	epolnode -listen :7777 -ranks 2 -gen 3000 &
//	epolnode -connect 127.0.0.1:7777 -rank 1 -ranks 2 -gen 3000
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"octgb/internal/cluster"
	"octgb/internal/engine"
	"octgb/internal/gb"
	"octgb/internal/molecule"
	"octgb/internal/obs"
	"octgb/internal/surface"
)

func main() {
	var (
		listen  = flag.String("listen", "", "root mode: address to listen on (e.g. :7777)")
		connect = flag.String("connect", "", "worker mode: root address to connect to")
		rank    = flag.Int("rank", 0, "this worker's rank (workers only; root is rank 0)")
		ranks   = flag.Int("ranks", 2, "total number of ranks")
		in      = flag.String("in", "", "input molecule in PQR format (same file on every rank)")
		gen     = flag.Int("gen", 0, "generate a synthetic protein instead (same -gen/-seed on every rank)")
		seed    = flag.Int64("seed", 1, "generator seed")
		threads = flag.Int("threads", 1, "threads per rank (1 = pure distributed)")
		bornEps = flag.Float64("borneps", 0.9, "Born ε")
		epolEps = flag.Float64("epoleps", 0.9, "E_pol ε")
		approx  = flag.Bool("approx", false, "approximate math")
		mesh    = flag.Bool("mesh", true, "build the worker-to-worker mesh for topology-aware collectives (same flag on every rank; -mesh=false falls back to the root star)")
		timeout = flag.Duration("commtimeout", 30*time.Second, "failure-detection timeout: a rank silent this long is reported failed (same value on every rank; 0 disables detection and blocks forever)")
		obsAddr = flag.String("obs", "", "debug listener address (e.g. 127.0.0.1:6060) exposing /metrics, /debug/trace and /debug/pprof/*; empty disables instrumentation")
	)
	flag.Parse()

	mol, err := loadMolecule(*in, *gen, *seed)
	if err != nil {
		fatal(err)
	}
	pr := engine.NewProblem(mol, surface.Default())
	opts := engine.Options{Threads: *threads, BornEps: *bornEps, EpolEps: *epolEps, CommTimeout: *timeout}
	if *approx {
		opts.Math = gb.Approximate
	}

	// -obs turns on instrumentation for this rank — engine phase
	// histograms, collective latency/bytes, heartbeat gaps, trace spans —
	// and serves them on a side listener so a cluster dashboard can scrape
	// every rank independently of the compute transport.
	var ob *obs.Observer
	if *obsAddr != "" {
		ob = obs.New()
		opts.Observe = ob
		if err := serveDebug(*obsAddr, ob); err != nil {
			fatal(err)
		}
	}

	// The transport logger surfaces fault-tolerance events — dial retries
	// and, above all, the Topo→Star downgrade when the mesh cannot be
	// completed — so a degraded deployment is visible, not silent.
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "epolnode: "+format+"\n", args...)
	}
	tcpOpts := []cluster.TCPOption{cluster.WithLogger(logf), cluster.WithCommTimeout(opts.CommTimeout)}
	if *mesh {
		tcpOpts = append(tcpOpts, cluster.WithMesh())
	}
	if ob != nil {
		tcpOpts = append(tcpOpts, cluster.WithObserver(ob))
	}
	var comm cluster.Comm
	switch {
	case *listen != "":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "epolnode: root waiting for %d workers on %s\n", *ranks-1, ln.Addr())
		comm, err = cluster.NewTCPRoot(ln, *ranks, tcpOpts...)
		if err != nil {
			fatal(err)
		}
	case *connect != "":
		comm, err = cluster.DialTCP(*connect, *rank, *ranks, tcpOpts...)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -listen (root) or -connect (worker)"))
	}

	rep, err := engine.RunRank(comm, pr, opts)
	if err != nil {
		var rf cluster.ErrRankFailed
		if errors.As(err, &rf) {
			fmt.Fprintf(os.Stderr, "epolnode: rank %d failed (silent past %v)\n", rf.Rank, *timeout)
			if fd, ok := comm.(cluster.FailureDetector); ok {
				fmt.Fprintf(os.Stderr, "epolnode: liveness: %v\n", fd.AliveRanks())
			}
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "epolnode: rank %d/%d done (wall local work only)\n", comm.Rank(), comm.Size())
	if comm.Rank() == 0 {
		fmt.Printf("molecule: %s (%d atoms)\nE_pol: %.6g kcal/mol\n", mol.Name, mol.N(), rep.Energy)
	}
}

// serveDebug binds the -obs listener and serves the observability
// endpoints in the background for the life of the process (the run exits
// when the computation does; no graceful drain is needed for a scrape
// target).
func serveDebug(addr string, ob *obs.Observer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", ob.Reg.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = ob.Trace.WriteTrace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(os.Stderr, "epolnode: observability on http://%s/metrics\n", ln.Addr())
	go func() { _ = srv.Serve(ln) }()
	return nil
}

func loadMolecule(in string, gen int, seed int64) (*molecule.Molecule, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return molecule.ReadPQR(f, in)
	}
	if gen <= 0 {
		gen = 2000
	}
	return molecule.GenerateProtein(fmt.Sprintf("protein_%d", gen), gen, seed), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "epolnode:", err)
	os.Exit(1)
}
