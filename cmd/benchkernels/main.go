// Command benchkernels measures the micro-level costs behind the
// two-phase treecode: the Born and energy evaluation phases (recursive
// fused traversal vs flat interaction-list kernels, plus the list rebuild
// cost amortized by ε-sweeps and docking poses), the Chase–Lev
// work-stealing deque primitives against the mutex-deque baseline, and
// ParallelFor dispatch through both pools.
//
// Results are printed and written as JSON (default BENCH_kernels.json,
// the file committed at the repository root).
//
// Usage:
//
//	benchkernels                 # N = 10000 atoms, writes BENCH_kernels.json
//	benchkernels -n 2000 -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"octgb/internal/core"
	"octgb/internal/molecule"
	"octgb/internal/sched"
	"octgb/internal/surface"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	NAtoms     int                `json:"n_atoms"`
	NQPoints   int                `json:"n_qpoints"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Results    []result           `json:"results"`
	Derived    map[string]float64 `json:"derived"`
}

func main() {
	n := flag.Int("n", 10000, "atom count for the kernel benchmarks")
	outPath := flag.String("o", "BENCH_kernels.json", "output JSON path")
	flag.Parse()

	rep := report{
		NAtoms:     *n,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Derived:    map[string]float64{},
	}
	run := func(name string, fn func(b *testing.B)) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		rep.Results = append(rep.Results, result{name, ns, r.AllocedBytesPerOp(), r.AllocsPerOp()})
		fmt.Printf("%-34s %14.1f ns/op %12d B/op %6d allocs/op\n",
			name, ns, r.AllocedBytesPerOp(), r.AllocsPerOp())
		return ns
	}

	// ---- treecode kernels ------------------------------------------------
	m := molecule.GenerateProtein("bench", *n, 5)
	qpts := surface.Sample(m, surface.Default())
	rep.NQPoints = len(qpts)
	bs := core.NewBornSolver(m, qpts, core.BornConfig{Eps: 0.9})
	bornList := bs.BuildBornList(0, bs.NumQLeaves())

	recNS := run("born/recursive", func(b *testing.B) {
		sN, sA := bs.NewAccumulators()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l := 0; l < bs.NumQLeaves(); l++ {
				bs.AccumulateQLeaf(l, sN, sA)
			}
		}
	})
	flatNS := run("born/flat-eval", func(b *testing.B) {
		sN, sA := bs.NewAccumulators()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bs.EvalBornList(bornList, sN, sA)
		}
	})
	run("born/flat-rebuild", func(b *testing.B) {
		scratch := new(core.InteractionList)
		bs.BuildBornListInto(scratch, 0, bs.NumQLeaves()) // warm capacity
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bs.BuildBornListInto(scratch, 0, bs.NumQLeaves())
		}
	})
	rep.Derived["born_eval_speedup"] = recNS / flatNS

	// Born radii through the treecode feed the energy benchmarks.
	sN, sA := bs.NewAccumulators()
	bs.EvalBornList(bornList, sN, sA)
	rTree := make([]float64, m.N())
	bs.PushIntegrals(sN, sA, 0, int32(m.N()), rTree)
	es := core.NewEpolSolverFromMolecule(m, bs.RadiiToOriginal(rTree), core.EpolConfig{Eps: 0.9})
	epolList := es.BuildEpolList(0, es.NumLeaves())

	recNS = run("epol/recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var raw float64
			for l := 0; l < es.NumLeaves(); l++ {
				e, _ := es.LeafEnergy(l)
				raw += e
			}
			_ = raw
		}
	})
	flatNS = run("epol/flat-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw, _ := es.EvalEpolList(epolList)
			_ = raw
		}
	})
	run("epol/flat-rebuild", func(b *testing.B) {
		scratch := new(core.InteractionList)
		es.BuildEpolListInto(scratch, 0, es.NumLeaves()) // warm capacity
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			es.BuildEpolListInto(scratch, 0, es.NumLeaves())
		}
	})
	rep.Derived["epol_eval_speedup"] = recNS / flatNS

	// ---- scheduler primitives -------------------------------------------
	task := sched.Task(func(int) {})
	for _, impl := range []struct {
		name  string
		mutex bool
	}{{"chaselev", false}, {"mutex", true}} {
		clNS := run("deque/push-pop/"+impl.name, func(b *testing.B) {
			d := sched.NewDequeBench(impl.mutex)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&task)
				d.Pop()
			}
		})
		if impl.mutex {
			rep.Derived["deque_push_pop_speedup"] = clNS / rep.Derived["deque_push_pop_chaselev_ns"]
		} else {
			rep.Derived["deque_push_pop_chaselev_ns"] = clNS
		}
		stNS := run("deque/steal/"+impl.name, func(b *testing.B) {
			d := sched.NewDequeBench(impl.mutex)
			for i := 0; i < 1024; i++ {
				d.Push(&task)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := d.Steal(); !ok {
					b.StopTimer()
					for j := 0; j < 1024; j++ {
						d.Push(&task)
					}
					b.StartTimer()
				}
			}
		})
		if impl.mutex {
			rep.Derived["deque_steal_speedup"] = stNS / rep.Derived["deque_steal_chaselev_ns"]
		} else {
			rep.Derived["deque_steal_chaselev_ns"] = stNS
		}
	}

	work := func(w, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i % 17)
		}
		_ = s
	}
	for _, impl := range []struct {
		name string
		mk   func(p int) *sched.Pool
	}{{"chaselev", sched.NewPool}, {"mutex", sched.NewMutexPool}} {
		for _, p := range []int{1, 2, 4, 8} {
			ns := run(fmt.Sprintf("parallelfor/%s/p=%d", impl.name, p), func(b *testing.B) {
				pool := impl.mk(p)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pool.ParallelFor(1<<14, 8, work)
				}
			})
			rep.Derived[fmt.Sprintf("parallelfor_%s_p%d_ns", impl.name, p)] = ns
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
	fmt.Printf("\nborn eval speedup (flat vs recursive): %.2fx\n", rep.Derived["born_eval_speedup"])
	fmt.Printf("epol eval speedup (flat vs recursive): %.2fx\n", rep.Derived["epol_eval_speedup"])
	fmt.Printf("wrote %s\n", *outPath)
}
