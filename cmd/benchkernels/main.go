// Command benchkernels measures the micro-level costs behind the
// two-phase treecode: the Born and energy evaluation phases (recursive
// fused traversal vs flat interaction-list kernels, plus the list rebuild
// cost amortized by ε-sweeps and docking poses), the same flat kernels in
// the float32 storage tier and under the work-stealing pool at
// GOMAXPROCS workers, the Chase–Lev work-stealing deque primitives
// against the mutex-deque baseline, and ParallelFor dispatch through both
// pools. The f32 entries also record the observed f32-vs-f64 relative
// error for each workload (max per-atom Born-radius error, total-energy
// error) in the derived block.
//
// Results are printed and written as JSON (default BENCH_kernels.json,
// the file committed at the repository root).
//
// Usage:
//
//	benchkernels                 # N = 10000 atoms, writes BENCH_kernels.json
//	benchkernels -n 2000 -o out.json
//	benchkernels -check          # compare against committed JSON, exit 1
//	                             # on >15% ns/op kernel regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"octgb/internal/core"
	"octgb/internal/molecule"
	"octgb/internal/sched"
	"octgb/internal/surface"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	NAtoms     int                `json:"n_atoms"`
	NQPoints   int                `json:"n_qpoints"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Results    []result           `json:"results"`
	Derived    map[string]float64 `json:"derived"`
}

func main() {
	n := flag.Int("n", 10000, "atom count for the kernel benchmarks")
	outPath := flag.String("o", "BENCH_kernels.json", "output JSON path (baseline path with -check)")
	check := flag.Bool("check", false, "compare against the committed JSON instead of overwriting it; exit 1 on regression")
	tol := flag.Float64("tol", 0.15, "allowed fractional ns/op regression for -check")
	best := flag.Int("best", 0, "repeat each treecode kernel this many times and keep the fastest (0 = 1 normally, 3 with -check)")
	flag.Parse()
	if *best == 0 {
		*best = 1
		if *check {
			*best = 3
		}
	}

	var baseline *report
	if *check {
		buf, err := os.ReadFile(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchkernels: -check:", err)
			os.Exit(1)
		}
		baseline = new(report)
		if err := json.Unmarshal(buf, baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchkernels: -check: parse %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		if baseline.NAtoms != *n {
			fmt.Printf("note: baseline was recorded at n=%d, running at n=%d\n", baseline.NAtoms, *n)
		}
	}

	rep := report{
		NAtoms:     *n,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Derived:    map[string]float64{},
	}
	run := func(name string, fn func(b *testing.B)) float64 {
		// Min-of-reps on the treecode kernels: the minimum is the standard
		// noise-robust estimator for single-machine benchmarking — every
		// source of interference only ever makes a run slower.
		reps := 1
		if strings.HasPrefix(name, "born/") || strings.HasPrefix(name, "epol/") {
			reps = *best
		}
		var bestRes testing.BenchmarkResult
		bestNS := math.Inf(1)
		for i := 0; i < reps; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				fn(b)
			})
			if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < bestNS {
				bestNS, bestRes = ns, r
			}
		}
		rep.Results = append(rep.Results, result{name, bestNS, bestRes.AllocedBytesPerOp(), bestRes.AllocsPerOp()})
		fmt.Printf("%-34s %14.1f ns/op %12d B/op %6d allocs/op\n",
			name, bestNS, bestRes.AllocedBytesPerOp(), bestRes.AllocsPerOp())
		return bestNS
	}

	// ---- treecode kernels ------------------------------------------------
	m := molecule.GenerateProtein("bench", *n, 5)
	qpts := surface.Sample(m, surface.Default())
	rep.NQPoints = len(qpts)
	bs := core.NewBornSolver(m, qpts, core.BornConfig{Eps: 0.9})
	bornList := bs.BuildBornList(0, bs.NumQLeaves())
	workers := runtime.GOMAXPROCS(0)
	pool := sched.NewPool(workers)
	rep.Derived["par_workers"] = float64(workers)

	recNS := run("born/recursive", func(b *testing.B) {
		sN, sA := bs.NewAccumulators()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l := 0; l < bs.NumQLeaves(); l++ {
				bs.AccumulateQLeaf(l, sN, sA)
			}
		}
	})
	flatNS := run("born/flat-eval", func(b *testing.B) {
		sN, sA := bs.NewAccumulators()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bs.EvalBornList(bornList, sN, sA)
		}
	})
	parNS := run("born/flat-eval-par", func(b *testing.B) {
		sN, sA := bs.NewAccumulators()
		accN := make([][]float64, pool.Workers())
		accA := make([][]float64, pool.Workers())
		for w := range accN {
			accN[w], accA[w] = bs.NewAccumulators()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			evalBornListParallel(bs, bornList, pool, accN, accA, sN, sA)
		}
	})
	rep.Derived["born_par_speedup"] = flatNS / parNS
	run("born/flat-rebuild", func(b *testing.B) {
		scratch := new(core.InteractionList)
		bs.BuildBornListInto(scratch, 0, bs.NumQLeaves()) // warm capacity
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bs.BuildBornListInto(scratch, 0, bs.NumQLeaves())
		}
	})
	rep.Derived["born_eval_speedup"] = recNS / flatNS

	// Reduced-precision tier: the same geometry in f32 storage. The tier
	// makes identical near/far decisions, so the lists are interchangeable;
	// it is rebuilt from scratch here to exercise its own construction.
	bs32 := core.NewBornSolver(m, qpts, core.BornConfig{Eps: 0.9, Precision: core.Float32})
	bornList32 := bs32.BuildBornList(0, bs32.NumQLeaves())
	f32NS := run("born/flat-eval-f32", func(b *testing.B) {
		sN, sA := bs32.NewAccumulators()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bs32.EvalBornList(bornList32, sN, sA)
		}
	})
	rep.Derived["born_f32_speedup"] = flatNS / f32NS

	// Born radii through the treecode feed the energy benchmarks, and the
	// f64-vs-f32 radii give the observed tier error for the Born workload.
	sN, sA := bs.NewAccumulators()
	bs.EvalBornList(bornList, sN, sA)
	rTree := make([]float64, m.N())
	bs.PushIntegrals(sN, sA, 0, int32(m.N()), rTree)
	radii := bs.RadiiToOriginal(rTree)

	sN32, sA32 := bs32.NewAccumulators()
	bs32.EvalBornList(bornList32, sN32, sA32)
	rTree32 := make([]float64, m.N())
	bs32.PushIntegrals(sN32, sA32, 0, int32(m.N()), rTree32)
	radii32 := bs32.RadiiToOriginal(rTree32)
	maxRel := 0.0
	for i := range radii {
		if rel := math.Abs(radii32[i]-radii[i]) / math.Abs(radii[i]); rel > maxRel {
			maxRel = rel
		}
	}
	rep.Derived["born_f32_max_rel_err"] = maxRel

	es := core.NewEpolSolverFromMolecule(m, radii, core.EpolConfig{Eps: 0.9})
	epolList := es.BuildEpolList(0, es.NumLeaves())

	recNS = run("epol/recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var raw float64
			for l := 0; l < es.NumLeaves(); l++ {
				e, _ := es.LeafEnergy(l)
				raw += e
			}
			_ = raw
		}
	})
	flatNS = run("epol/flat-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw, _ := es.EvalEpolList(epolList)
			_ = raw
		}
	})
	parNS = run("epol/flat-eval-par", func(b *testing.B) {
		partial := make([]float64, pool.Workers())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			raw := evalEpolListParallel(es, epolList, pool, partial)
			_ = raw
		}
	})
	rep.Derived["epol_par_speedup"] = flatNS / parNS
	run("epol/flat-rebuild", func(b *testing.B) {
		scratch := new(core.InteractionList)
		es.BuildEpolListInto(scratch, 0, es.NumLeaves()) // warm capacity
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			es.BuildEpolListInto(scratch, 0, es.NumLeaves())
		}
	})
	rep.Derived["epol_eval_speedup"] = recNS / flatNS

	// f32 energy tier from the same (f64) Born radii, so the derived error
	// isolates the energy kernel rather than compounding the Born tier's.
	es32 := core.NewEpolSolverFromMolecule(m, radii, core.EpolConfig{Eps: 0.9, Precision: core.Float32})
	epolList32 := es32.BuildEpolList(0, es32.NumLeaves())
	f32NS = run("epol/flat-eval-f32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raw, _ := es32.EvalEpolList(epolList32)
			_ = raw
		}
	})
	rep.Derived["epol_f32_speedup"] = flatNS / f32NS
	raw64, _ := es.EvalEpolList(epolList)
	raw32, _ := es32.EvalEpolList(epolList32)
	rep.Derived["epol_f32_rel_err"] = math.Abs(raw32-raw64) / math.Abs(raw64)

	// ---- scheduler primitives -------------------------------------------
	task := sched.Task(func(int) {})
	for _, impl := range []struct {
		name  string
		mutex bool
	}{{"chaselev", false}, {"mutex", true}} {
		clNS := run("deque/push-pop/"+impl.name, func(b *testing.B) {
			d := sched.NewDequeBench(impl.mutex)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&task)
				d.Pop()
			}
		})
		if impl.mutex {
			rep.Derived["deque_push_pop_speedup"] = clNS / rep.Derived["deque_push_pop_chaselev_ns"]
		} else {
			rep.Derived["deque_push_pop_chaselev_ns"] = clNS
		}
		stNS := run("deque/steal/"+impl.name, func(b *testing.B) {
			d := sched.NewDequeBench(impl.mutex)
			for i := 0; i < 1024; i++ {
				d.Push(&task)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := d.Steal(); !ok {
					b.StopTimer()
					for j := 0; j < 1024; j++ {
						d.Push(&task)
					}
					b.StartTimer()
				}
			}
		})
		if impl.mutex {
			rep.Derived["deque_steal_speedup"] = stNS / rep.Derived["deque_steal_chaselev_ns"]
		} else {
			rep.Derived["deque_steal_chaselev_ns"] = stNS
		}
	}

	work := func(w, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i % 17)
		}
		_ = s
	}
	for _, impl := range []struct {
		name string
		mk   func(p int) *sched.Pool
	}{{"chaselev", sched.NewPool}, {"mutex", sched.NewMutexPool}} {
		for _, p := range []int{1, 2, 4, 8} {
			ns := run(fmt.Sprintf("parallelfor/%s/p=%d", impl.name, p), func(b *testing.B) {
				pool := impl.mk(p)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pool.ParallelFor(1<<14, 8, work)
				}
			})
			rep.Derived[fmt.Sprintf("parallelfor_%s_p%d_ns", impl.name, p)] = ns
		}
	}

	if *check {
		os.Exit(checkAgainst(baseline, &rep, *tol))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
	fmt.Printf("\nborn eval speedup (flat vs recursive): %.2fx\n", rep.Derived["born_eval_speedup"])
	fmt.Printf("epol eval speedup (flat vs recursive): %.2fx\n", rep.Derived["epol_eval_speedup"])
	fmt.Printf("f32 tier: born %.2fx (max radius rel err %.2g), epol %.2fx (energy rel err %.2g)\n",
		rep.Derived["born_f32_speedup"], rep.Derived["born_f32_max_rel_err"],
		rep.Derived["epol_f32_speedup"], rep.Derived["epol_f32_rel_err"])
	fmt.Printf("wrote %s\n", *outPath)
}

// checkAgainst compares a fresh run with the committed baseline and
// returns the process exit code: 1 if any treecode evaluation kernel
// regressed by more than tol on ns/op or gained an allocation, else 0.
// Scheduler microbenches (deque/*, parallelfor/*) and the list rebuilds
// are reported but not gated — the sub-100ns and short-bench scales are
// far noisier than the evaluation kernels the gate exists to protect.
// Run on a quiet machine: the gate measures the CPU, and a loaded box
// fails it spuriously.
func checkAgainst(baseline, fresh *report, tol float64) int {
	base := make(map[string]result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	fmt.Printf("\n%-34s %14s %14s %9s\n", "kernel", "baseline ns/op", "fresh ns/op", "delta")
	failed := 0
	for _, r := range fresh.Results {
		b, ok := base[r.Name]
		if !ok {
			fmt.Printf("%-34s %14s %14.1f %9s\n", r.Name, "(new)", r.NsPerOp, "-")
			continue
		}
		delta := r.NsPerOp/b.NsPerOp - 1
		gated := (strings.HasPrefix(r.Name, "born/") || strings.HasPrefix(r.Name, "epol/")) &&
			!strings.Contains(r.Name, "rebuild")
		status := ""
		if gated {
			if delta > tol {
				status = "  REGRESSED"
				failed++
			}
			if r.AllocsPerOp > b.AllocsPerOp {
				status += "  ALLOCS"
				failed++
			}
		}
		fmt.Printf("%-34s %14.1f %14.1f %+8.1f%%%s\n", r.Name, b.NsPerOp, r.NsPerOp, delta*100, status)
	}
	if failed > 0 {
		fmt.Printf("\nFAIL: %d kernel(s) regressed beyond %.0f%% vs %d-atom baseline\n",
			failed, tol*100, baseline.NAtoms)
		return 1
	}
	fmt.Printf("\nOK: no kernel regressed beyond %.0f%%\n", tol*100)
	return 0
}

// evalBornListParallel mirrors the engine's pooled Born evaluation: far
// and near entries form one combined index space the workers chunk and
// steal, each into its own pre-allocated accumulator pair, reduced into
// sNode/sAtom afterwards. Accumulators are not zeroed between calls —
// like the serial benchmark loop, the sums just keep growing.
func evalBornListParallel(bs *core.BornSolver, list *core.InteractionList, pool *sched.Pool, accN, accA [][]float64, sNode, sAtom []float64) {
	nf := len(list.Far)
	total := nf + len(list.Near)
	if total == 0 {
		return
	}
	pool.ParallelFor(total, 0, func(w, lo, hi int) {
		if lo < nf {
			fhi := hi
			if fhi > nf {
				fhi = nf
			}
			bs.EvalBornFarRange(list, lo, fhi, accN[w])
		}
		if hi > nf {
			nlo := lo
			if nlo < nf {
				nlo = nf
			}
			bs.EvalBornNearRange(list, nlo-nf, hi-nf, accA[w])
		}
	})
	for w := range accN {
		for i := range sNode {
			sNode[i] += accN[w][i]
		}
		for i := range sAtom {
			sAtom[i] += accA[w][i]
		}
	}
}

// evalEpolListParallel mirrors the engine's pooled energy evaluation:
// per-worker partial sums over the combined near+far index space, reduced
// to the raw ordered-pair sum.
func evalEpolListParallel(es *core.EpolSolver, list *core.InteractionList, pool *sched.Pool, partial []float64) float64 {
	nn := len(list.Near)
	total := nn + len(list.Far)
	if total == 0 {
		return 0
	}
	for w := range partial {
		partial[w] = 0
	}
	pool.ParallelFor(total, 0, func(w, lo, hi int) {
		var sum float64
		if lo < nn {
			nhi := hi
			if nhi > nn {
				nhi = nn
			}
			sum += es.EvalEpolNearRange(list, lo, nhi)
		}
		if hi > nn {
			flo := lo
			if flo < nn {
				flo = nn
			}
			sum += es.EvalEpolFarRange(list, flo-nn, hi-nn)
		}
		partial[w] += sum
	})
	var raw float64
	for _, p := range partial {
		raw += p
	}
	return raw
}
