// Command genmol emits the library's synthetic molecules in PQR format —
// the deterministic stand-ins for the paper's benchmark inputs.
//
// Usage:
//
//	genmol -kind protein -n 5000 -o prot.pqr
//	genmol -kind capsid -n 509640 -o cmv.pqr      # CMV-shell analogue
//	genmol -kind complex -n 4000 -ligand 500 -o cx.pqr
package main

import (
	"flag"
	"fmt"
	"os"

	"octgb/internal/molecule"
)

func main() {
	var (
		kind   = flag.String("kind", "protein", "protein | capsid | complex")
		n      = flag.Int("n", 2000, "atom count (receptor atoms for complex)")
		ligand = flag.Int("ligand", 0, "ligand atom count for complex (default n/10)")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var mol *molecule.Molecule
	switch *kind {
	case "protein":
		mol = molecule.GenerateProtein(fmt.Sprintf("protein_%d", *n), *n, *seed)
	case "capsid":
		mol = molecule.GenerateCapsid(fmt.Sprintf("capsid_%d", *n), *n, 20, *seed)
	case "complex":
		l := *ligand
		if l <= 0 {
			l = *n / 10
		}
		mol = molecule.GenerateComplex(fmt.Sprintf("complex_%d_%d", *n, l), *n, l, *seed)
	default:
		fmt.Fprintf(os.Stderr, "genmol: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genmol:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := molecule.WritePQR(w, mol); err != nil {
		fmt.Fprintln(os.Stderr, "genmol:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "genmol: wrote %s (%d atoms)\n", mol.Name, mol.N())
}
