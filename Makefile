GO ?= go

.PHONY: verify build vet test race bench bench-kernels bench-comm

## verify: the tier-1 gate — build, vet, full tests, then race-test the
## concurrency-bearing packages (scheduler + treecode kernels).
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sched/... ./internal/core/... ./internal/cluster/...

## bench: every figure/table benchmark at reduced scale.
bench:
	$(GO) test -bench=. -benchmem

## bench-kernels: regenerate the committed BENCH_kernels.json micro-benchmark
## report (flat vs recursive kernels, Chase–Lev vs mutex deque, ParallelFor).
bench-kernels:
	$(GO) run ./cmd/benchkernels -o BENCH_kernels.json

## bench-comm: regenerate the committed BENCH_comm.json collective-layer
## report (topo vs star algorithms, both transports, modeled cluster costs).
bench-comm:
	$(GO) run ./cmd/benchcomm -o BENCH_comm.json
