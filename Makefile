GO ?= go

.PHONY: verify build vet staticcheck test race fuzz chaos fabric-chaos obs-smoke load-check load-bench load-live bench bench-kernels bench-kernels-check bench-comm serve-bench bench-stream bench-stream-check

## verify: the tier-1 gate — build, vet (+staticcheck when installed), full
## tests, race-test the concurrency-bearing packages (scheduler, treecode
## kernels, cluster transports, distributed engines, chaos harness,
## observability, serving, fabric, load harness), smoke the /metrics
## exposition, replay the committed load trace through the virtual-time
## simulator and gate on its SLO, then run the fabric worker-crash matrix.
## load-check joins verify (unlike the timing-based bench-*-check gates)
## because the simulation is deterministic — it cannot flake on a loaded
## machine. Run bench-kernels-check as well before merging kernel-touching
## changes.
verify: build vet staticcheck test race obs-smoke load-check fabric-chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## staticcheck: run staticcheck over the observability and serving layers
## when the tool is on PATH; a bare toolchain skips it rather than failing.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./internal/obs/... ./internal/serve/... ./cmd/...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sched/... ./internal/core/... ./internal/cluster/... ./internal/engine/... ./internal/clusterchaos/... ./internal/serve/... ./internal/obs/... ./internal/loadgen/... ./internal/fabric/...

## obs-smoke: boot the instrumented serving stack on a loopback port, drive
## requests through it and fail on any malformed /metrics exposition line
## or missing metric family (cmd/obssmoke; uses the library's own
## Prometheus text-format validator, no external tools).
obs-smoke:
	$(GO) run ./cmd/obssmoke

## fuzz: short smoke of the native fuzz targets (wire-frame decoder, PQR
## parser, load-trace spec, fabric membership wire) on top of their
## committed seed corpora. CI-friendly budget; run with a larger -fuzztime
## locally to dig.
fuzz:
	$(GO) test ./internal/cluster/ -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 10s
	$(GO) test ./internal/molecule/ -run '^$$' -fuzz FuzzParsePQR -fuzztime 10s
	$(GO) test ./internal/loadgen/ -run '^$$' -fuzz FuzzTraceSpec -fuzztime 10s
	$(GO) test ./internal/fabric/ -run '^$$' -fuzz FuzzDecodeMessage -fuzztime 10s

## chaos: the full fault-injection acceptance matrix — every fault class ×
## both transports × P ∈ {2,4,8} × 8 seeds. The fatal classes each spend
## their receive timeout, so this takes minutes by design.
chaos:
	CHAOS_FULL=1 $(GO) test ./internal/clusterchaos/ -run TestChaosMatrix -timeout 30m -v

## fabric-chaos: the serving fabric's worker-crash matrix — victim index ×
## crash mode (HTTP-only vs full) × hedging, each cell a live router + 3
## engine workers with one killed mid-load. Asserts no accepted request
## lost, ring convergence, and router health on the survivors. Seconds of
## wall time, so it rides in verify.
fabric-chaos:
	FABRIC_CHAOS=1 $(GO) test ./internal/fabric/ -run TestChaosWorkerCrashMatrix -count=1 -timeout 10m

## load-check: SLO regression gate — replay the committed steady-mixed
## trace through the virtual-time simulator, untuned then with the
## admission tuner, and fail if the tuned run misses the trace's SLO,
## admits less throughput than the untuned baseline, or drifts >15% from
## the committed BENCH_slo.json (p99 up or admitted qps down). Pure
## simulation: deterministic, seconds of wall time, safe under CI load.
load-check:
	$(GO) run ./cmd/loadgen -trace traces/steady-mixed.json -check BENCH_slo.json

## load-bench: regenerate the committed BENCH_slo.json baseline from the
## steady-mixed trace. Commit the result alongside any intentional change
## to the trace, the tuner, or the simulator's cost model.
load-bench:
	$(GO) run ./cmd/loadgen -trace traces/steady-mixed.json -o BENCH_slo.json

## load-live: wall-clock smoke of the live replay path — boots a real
## server on a loopback port and drives the small committed live trace
## through it. Latencies are honest but machine-dependent; nothing is
## gated on them.
load-live:
	$(GO) run ./cmd/loadgen -trace traces/live-smoke.json -mode live

## bench: every figure/table benchmark at reduced scale.
bench:
	$(GO) test -bench=. -benchmem

## bench-kernels: regenerate the committed BENCH_kernels.json micro-benchmark
## report (flat vs recursive kernels, f32 tier, pooled evaluation, Chase–Lev
## vs mutex deque, ParallelFor).
bench-kernels:
	$(GO) run ./cmd/benchkernels -o BENCH_kernels.json

## bench-kernels-check: perf regression gate — re-run the treecode kernels
## (min of 3 reps each) and fail if any evaluation kernel is >15% ns/op
## slower than the committed BENCH_kernels.json, or if a zero-alloc kernel
## started allocating. List rebuilds and scheduler microbenches are
## reported but not gated. Run on an otherwise-idle machine.
bench-kernels-check:
	$(GO) run ./cmd/benchkernels -check -o BENCH_kernels.json

## bench-comm: regenerate the committed BENCH_comm.json collective-layer
## report (topo vs star algorithms, both transports, modeled cluster costs).
bench-comm:
	$(GO) run ./cmd/benchcomm -o BENCH_comm.json

## serve-bench: regenerate the committed BENCH_serve.json serving-layer
## report (cold vs warm request latency through the prepared-problem cache,
## batched pose sweep vs sequential single requests).
serve-bench:
	$(GO) run ./cmd/benchserve -o BENCH_serve.json

## bench-stream: regenerate the committed BENCH_stream.json incremental-
## evaluation report (steady-state session frame vs from-scratch
## re-evaluation, session build cost, frame-speedup headline).
bench-stream:
	$(GO) run ./cmd/benchstream -o BENCH_stream.json

## bench-stream-check: perf regression gate — re-run the stream benchmarks
## (min of 3 reps each) and fail if any is >15% ns/op slower than the
## committed BENCH_stream.json, gained an allocation, or the incremental
## frame speedup fell below the 5x acceptance floor. Run on an
## otherwise-idle machine.
bench-stream-check:
	$(GO) run ./cmd/benchstream -check -o BENCH_stream.json
