module octgb

go 1.22
