package octgb_test

import (
	"fmt"

	"octgb"
)

// The minimal library use: one call from molecule to energy.
func ExampleCompute() {
	mol := octgb.GenerateProtein("example", 400, 1)
	res, err := octgb.Compute(mol, octgb.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Energy < 0) // polarization always lowers the energy
	// Output: true
}

// Projecting a run onto the paper's modeled 144-core cluster without
// owning one.
func ExampleSimModel() {
	mol := octgb.GenerateProtein("example", 400, 1)
	pr := octgb.NewProblem(mol, octgb.SurfaceOptions{})
	sm := octgb.BuildSimModel(pr, octgb.OctMPI, octgb.EngineOptions{})
	t12 := sm.Time(12, 1, octgb.Lonestar4(), -1)
	t144 := sm.Time(144, 1, octgb.Lonestar4(), -1)
	fmt.Println(t144.TotalSec < t12.TotalSec)
	// Output: true
}
