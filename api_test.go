package octgb

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestComputeDefault(t *testing.T) {
	mol := GenerateProtein("api", 500, 3)
	res, err := Compute(mol, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy >= 0 {
		t.Errorf("E_pol = %v, want negative", res.Energy)
	}
	if len(res.BornRadii) != 500 {
		t.Errorf("Born radii: %d", len(res.BornRadii))
	}
	for i, r := range res.BornRadii {
		if r < mol.Atoms[i].Radius-1e-12 {
			t.Fatalf("Born radius %d below vdW", i)
		}
	}
}

func TestComputeZeroOptionsMeansDefaults(t *testing.T) {
	mol := GenerateProtein("api0", 300, 4)
	a, err := Compute(mol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(mol, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy {
		t.Errorf("zero options %v != defaults %v", a.Energy, b.Energy)
	}
}

func TestComputeRejectsBadInput(t *testing.T) {
	if _, err := Compute(nil, DefaultOptions()); err == nil {
		t.Error("nil molecule accepted")
	}
	if _, err := Compute(&Molecule{}, DefaultOptions()); err == nil {
		t.Error("empty molecule accepted")
	}
	bad := &Molecule{Name: "bad", Atoms: []Atom{{Radius: -1}}}
	if _, err := Compute(bad, DefaultOptions()); err == nil {
		t.Error("invalid molecule accepted")
	}
}

func TestComputeEnginesAgreeViaFacade(t *testing.T) {
	mol := GenerateProtein("api2", 400, 5)
	var energies []float64
	for _, k := range []Kind{OctCilk, OctMPI, OctMPICilk, NaiveExact} {
		o := DefaultOptions()
		o.Engine = k
		res, err := Compute(mol, o)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		energies = append(energies, res.Energy)
	}
	for _, e := range energies[1:] {
		if rel := math.Abs(e-energies[0]) / math.Abs(energies[0]); rel > 0.05 {
			t.Errorf("engines disagree: %v", energies)
		}
	}
}

func TestSimProjectionViaFacade(t *testing.T) {
	mol := GenerateProtein("api3", 800, 6)
	pr := NewProblem(mol, SurfaceOptions{})
	sm := BuildSimModel(pr, OctMPI, EngineOptions{})
	m := Lonestar4()
	t12 := sm.Time(12, 1, m, -1)
	t144 := sm.Time(144, 1, m, -1)
	if t144.TotalSec >= t12.TotalSec {
		t.Errorf("no projected scaling: %v vs %v", t144.TotalSec, t12.TotalSec)
	}
}

func TestCapsidViaFacade(t *testing.T) {
	mol := GenerateCapsid("apishell", 1200, 8, 7)
	res, err := Compute(mol, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy >= 0 {
		t.Errorf("capsid energy %v", res.Energy)
	}
}

// TestPrepareViaFacade: the public Prepare/EvalEpol split matches Compute
// on the shared-memory engine.
func TestPrepareViaFacade(t *testing.T) {
	mol := GenerateProtein("api-prep", 400, 6)
	so := SurfaceOptions{SubdivLevel: 1, Degree: 1, RadiusScale: 1}
	res, err := Compute(mol, Options{Engine: OctCilk, Threads: 1, BornEps: 0.9, EpolEps: 0.9, Surface: so})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(NewProblem(mol, so), EngineOptions{Threads: 1, BornEps: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.EvalEpol(EngineOptions{Threads: 1, EpolEps: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rep.Energy-res.Energy) / math.Abs(res.Energy); rel > 1e-12 {
		t.Fatalf("Prepare+EvalEpol %.17g vs Compute %.17g (rel %.2g)", rep.Energy, res.Energy, rel)
	}
	// A second evaluation reuses the preprocessing (bitwise with 1 thread).
	again, err := p.EvalEpol(EngineOptions{Threads: 1, EpolEps: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if again.Energy != rep.Energy {
		t.Fatalf("re-evaluation drifted: %.17g vs %.17g", again.Energy, rep.Energy)
	}
}

// TestServerViaFacade: the NewServer facade stands up a working service.
func TestServerViaFacade(t *testing.T) {
	s := NewServer(ServeConfig{Addr: "127.0.0.1:0", Workers: 1, Threads: 1})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" {
		t.Fatal("no bound address")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
